// Package policy defines the eviction-policy interface shared by the
// simulator and implements every baseline algorithm the paper compares
// S3-FIFO against (§5.2): FIFO, LRU, FIFO-Reinsertion/CLOCK, Segmented
// FIFO, SLRU, 2Q, ARC, LIRS, TinyLFU (1% and 10% windows), LRU-K, LeCaR,
// LHD, B-LRU, FIFO-Merge (Segcache), Sieve, Random, and the offline Belady
// bound. S3-FIFO itself lives in internal/core and implements the same
// interface.
//
// All policies are size-aware: capacity and usage are tracked in bytes
// (unit-size workloads simply use size 1, making capacity an object count,
// which matches the paper's default slab-storage setting).
package policy

import (
	"fmt"
	"sort"
)

// Eviction describes one evicted object, delivered to the eviction
// observer for instrumentation (frequency-at-eviction, eviction age,
// demotion precision).
type Eviction struct {
	Key  uint64
	Size uint32
	// Freq is the number of hits the object received after insertion.
	Freq int
	// InsertedAt and EvictedAt are logical times in requests processed by
	// the policy.
	InsertedAt, EvictedAt uint64
	// Queue names the queue the object was evicted from, for policies with
	// more than one (core.S3FIFO reports QueueSmall or QueueMain, mapping
	// to Algorithm 1's EVICTS/EVICTM branches). Single-queue baselines
	// leave it empty.
	Queue string
}

// Queue values reported in Eviction.Queue by multi-queue policies.
const (
	QueueSmall = "small"
	QueueMain  = "main"
)

// Observer receives eviction events.
type Observer func(Eviction)

// Policy is a single-threaded cache eviction policy.
//
// Request processes a Get: it returns true on a hit; on a miss the object
// is admitted (on-demand fill) subject to the policy's admission rules, and
// other objects are evicted as needed. Objects larger than the cache are
// bypassed (a miss, nothing cached).
type Policy interface {
	// Name returns the algorithm's canonical name.
	Name() string
	// Request processes a Get for key with the given size.
	Request(key uint64, size uint32) bool
	// Contains reports whether key is currently cached, without side
	// effects on the policy's metadata.
	Contains(key uint64) bool
	// Delete removes key if cached.
	Delete(key uint64)
	// Used returns the bytes currently cached.
	Used() uint64
	// Capacity returns the configured capacity in bytes.
	Capacity() uint64
	// SetObserver installs the eviction observer (nil to clear).
	SetObserver(Observer)
}

// Factory constructs a policy with the given capacity in bytes.
type Factory func(capacity uint64) Policy

// builtin maps algorithm names to factories for every online baseline in
// this package. Belady is offline and constructed separately via NewBelady.
var builtin = map[string]Factory{
	"fifo":             func(c uint64) Policy { return NewFIFO(c) },
	"lru":              func(c uint64) Policy { return NewLRU(c) },
	"clock":            func(c uint64) Policy { return NewClock(c) },
	"fifo-reinsertion": func(c uint64) Policy { return NewClock(c) }, // same algorithm (§3 fn.1)
	"sfifo":            func(c uint64) Policy { return NewSegmentedFIFO(c, 2) },
	"slru":             func(c uint64) Policy { return NewSLRU(c, 4) },
	"2q":               func(c uint64) Policy { return New2Q(c) },
	"arc":              func(c uint64) Policy { return NewARC(c) },
	"lirs":             func(c uint64) Policy { return NewLIRS(c) },
	"tinylfu":          func(c uint64) Policy { return NewTinyLFU(c, 0.01) },
	"tinylfu-0.1":      func(c uint64) Policy { return NewTinyLFU(c, 0.10) },
	"lru-2":            func(c uint64) Policy { return NewLRUK(c, 2) },
	"lecar":            func(c uint64) Policy { return NewLeCaR(c) },
	"lhd":              func(c uint64) Policy { return NewLHD(c) },
	"b-lru":            func(c uint64) Policy { return NewBLRU(c) },
	"fifo-merge":       func(c uint64) Policy { return NewFIFOMerge(c) },
	"sieve":            func(c uint64) Policy { return NewSieve(c) },
	"random":           func(c uint64) Policy { return NewRandom(c) },
	"cacheus":          func(c uint64) Policy { return NewCACHEUS(c) },
	"clock-pro":        func(c uint64) Policy { return NewClockPro(c) },
	"eelru":            func(c uint64) Policy { return NewEELRU(c) },
	"lrfu":             func(c uint64) Policy { return NewLRFU(c, 0) },
	"mq":               func(c uint64) Policy { return NewMQ(c) },
	"lfu-da":           func(c uint64) Policy { return NewLFUDA(c) },
	"gdsf":             func(c uint64) Policy { return NewGDSF(c) },
	"hyperbolic":       func(c uint64) Policy { return NewHyperbolic(c) },
}

// New constructs the named baseline policy.
func New(name string, capacity uint64) (Policy, error) {
	f, ok := builtin[name]
	if !ok {
		return nil, fmt.Errorf("policy: unknown algorithm %q", name)
	}
	return f(capacity), nil
}

// Names returns the sorted names of all baseline policies.
func Names() []string {
	names := make([]string, 0, len(builtin))
	for n := range builtin {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// base carries the bookkeeping shared by every policy implementation.
type base struct {
	name     string
	capacity uint64
	used     uint64
	clock    uint64 // requests processed
	observer Observer
}

func (b *base) Name() string           { return b.name }
func (b *base) Used() uint64           { return b.used }
func (b *base) Capacity() uint64       { return b.capacity }
func (b *base) SetObserver(o Observer) { b.observer = o }

// notify reports an eviction to the observer if one is installed.
func (b *base) notify(key uint64, size uint32, freq int, insertedAt uint64) {
	if b.observer != nil {
		b.observer(Eviction{
			Key: key, Size: size, Freq: freq,
			InsertedAt: insertedAt, EvictedAt: b.clock,
		})
	}
}
