package policy

import "s3fifo/internal/list"

// EELRU implements Early Eviction LRU (Smaragdakis, Kaplan & Wilson,
// SIGMETRICS'99, cited as [124]). EELRU watches where on the recency axis
// hits occur: many hits just beyond the cache size — the signature of a
// loop slightly larger than memory — mean plain LRU is pathological, and
// EELRU switches to evicting from an early point e of the recency axis
// instead of the tail, retaining the older portion of the loop.
//
// The recency axis is kept as two resident segments (early = the most
// recent half, late = the older half) plus a ghost region of one extra
// cache's worth of evicted IDs (e = C/2, M = 2C, the paper's canonical
// configuration). Hits in the late region argue for LRU eviction; hits in
// the ghost region argue for early-point eviction; the counters decay
// every C requests so the decision adapts.
type EELRU struct {
	base
	early, late *list.List // residents by recency; early front = MRU
	earlyBytes  uint64
	ghosts      *ghostList
	index       map[uint64]*eelruEntry

	lateHits, extHits float64
	sinceDecay        uint64
}

type eelruEntry struct {
	node    *list.Node
	inEarly bool
}

// NewEELRU returns an EELRU cache.
func NewEELRU(capacity uint64) *EELRU {
	return &EELRU{
		base:   base{name: "eelru", capacity: capacity},
		early:  list.New(),
		late:   list.New(),
		ghosts: newGhostList(capacity),
		index:  make(map[uint64]*eelruEntry),
	}
}

// Request implements Policy.
func (e *EELRU) Request(key uint64, size uint32) bool {
	e.clock++
	e.maybeDecay()
	if ent, ok := e.index[key]; ok {
		ent.node.Freq++
		if !ent.inEarly {
			// A hit deep on the recency axis: evidence for plain LRU.
			e.lateHits++
			e.late.Remove(ent.node)
			e.toEarly(ent)
		} else {
			e.early.MoveToFront(ent.node)
		}
		return true
	}
	if uint64(size) > e.capacity {
		return false
	}
	if e.ghosts.contains(key) {
		// A hit beyond the resident axis: the LRU-pathology signal.
		e.extHits++
		e.ghosts.remove(key)
	}
	for e.used+uint64(size) > e.capacity {
		e.evict()
	}
	ent := &eelruEntry{node: &list.Node{Key: key, Size: size, Aux: int64(e.clock)}}
	e.index[key] = ent
	e.used += uint64(size)
	e.toEarly(ent)
	return false
}

// toEarly inserts ent at the MRU end, demoting early-segment overflow to
// the late segment so early holds the most recent ~half of the residents.
func (e *EELRU) toEarly(ent *eelruEntry) {
	e.early.PushFront(ent.node)
	ent.inEarly = true
	e.earlyBytes += uint64(ent.node.Size)
	for e.earlyBytes > e.used/2 && e.early.Len() > 1 {
		tail := e.early.PopBack()
		e.earlyBytes -= uint64(tail.Size)
		e.index[tail.Key].inEarly = false
		e.late.PushFront(tail)
	}
}

// evict removes one resident: the global LRU page normally, or the page
// at the early point (the boundary between the segments) when hits beyond
// the cache dominate hits in the late region.
func (e *EELRU) evict() {
	var victim *list.Node
	// Early eviction pays off when the HIT DENSITY beyond the cache
	// exceeds the density in the late region: the ghost region spans one
	// full cache size while the late region spans half of one, so the
	// comparison is extHits/C > lateHits/(C/2).
	if e.extHits > 2*e.lateHits && e.early.Len() > 1 {
		victim = e.early.PopBack() // the e-th most recent page
		e.earlyBytes -= uint64(victim.Size)
	} else if victim = e.late.PopBack(); victim == nil {
		victim = e.early.PopBack()
		if victim == nil {
			return
		}
		e.earlyBytes -= uint64(victim.Size)
	}
	delete(e.index, victim.Key)
	e.used -= uint64(victim.Size)
	e.ghosts.push(victim.Key, victim.Size)
	e.notify(victim.Key, victim.Size, int(victim.Freq), uint64(victim.Aux))
}

// maybeDecay halves the region counters periodically so old evidence
// fades.
func (e *EELRU) maybeDecay() {
	e.sinceDecay++
	if e.sinceDecay >= e.capacity+64 {
		e.lateHits /= 2
		e.extHits /= 2
		e.sinceDecay = 0
	}
}

// Contains implements Policy.
func (e *EELRU) Contains(key uint64) bool {
	_, ok := e.index[key]
	return ok
}

// Delete implements Policy.
func (e *EELRU) Delete(key uint64) {
	ent, ok := e.index[key]
	if !ok {
		return
	}
	if ent.inEarly {
		e.early.Remove(ent.node)
		e.earlyBytes -= uint64(ent.node.Size)
	} else {
		e.late.Remove(ent.node)
	}
	delete(e.index, key)
	e.used -= uint64(ent.node.Size)
}

// Len returns the number of cached objects.
func (e *EELRU) Len() int { return len(e.index) }
