package policy

import "s3fifo/internal/list"

// TwoQ implements the full 2Q algorithm (Johnson & Shasha, VLDB'94) with
// the paper's parameters: a FIFO probationary queue A1in using 25% of the
// cache space, a ghost queue A1out holding IDs of objects evicted from
// A1in (sized to 50% of the cache in bytes), and an LRU main queue Am for
// the rest. Objects evicted from A1in are NOT promoted to Am (unlike
// S3-FIFO, as §5.2 highlights); only a later re-request through A1out
// admits an object to Am.
type TwoQ struct {
	base
	a1in  *list.List // FIFO, newest at front
	am    *list.List // LRU
	a1out *ghostList
	index map[uint64]*twoQEntry

	kin      uint64 // A1in byte quota
	a1inUsed uint64
}

type twoQEntry struct {
	node *list.Node
	inAm bool
}

// New2Q returns a 2Q cache with Kin=25% and Kout=50% of capacity.
func New2Q(capacity uint64) *TwoQ {
	kin := capacity / 4
	if kin < 1 {
		kin = 1
	}
	return &TwoQ{
		base:  base{name: "2q", capacity: capacity},
		a1in:  list.New(),
		am:    list.New(),
		a1out: newGhostList(capacity / 2),
		index: make(map[uint64]*twoQEntry),
		kin:   kin,
	}
}

// Request implements Policy.
func (q *TwoQ) Request(key uint64, size uint32) bool {
	q.clock++
	if e, ok := q.index[key]; ok {
		e.node.Freq++
		if e.inAm {
			q.am.MoveToFront(e.node)
		}
		// Hits in A1in do not reorder (it is a FIFO queue).
		return true
	}
	if uint64(size) > q.capacity {
		return false
	}
	for q.used+uint64(size) > q.capacity {
		q.reclaim()
	}
	n := &list.Node{Key: key, Size: size, Aux: int64(q.clock)}
	if q.a1out.contains(key) {
		q.a1out.remove(key)
		q.am.PushFront(n)
		q.index[key] = &twoQEntry{node: n, inAm: true}
	} else {
		q.a1in.PushFront(n)
		q.a1inUsed += uint64(size)
		q.index[key] = &twoQEntry{node: n, inAm: false}
	}
	q.used += uint64(size)
	return false
}

// reclaim frees space: if A1in is over its quota, its tail is evicted into
// the A1out ghost; otherwise the Am LRU tail is evicted outright.
func (q *TwoQ) reclaim() {
	if q.a1inUsed > q.kin || q.am.Len() == 0 {
		if n := q.a1in.PopBack(); n != nil {
			q.a1inUsed -= uint64(n.Size)
			q.used -= uint64(n.Size)
			delete(q.index, n.Key)
			q.a1out.push(n.Key, n.Size)
			q.notify(n.Key, n.Size, int(n.Freq), uint64(n.Aux))
			return
		}
	}
	if n := q.am.PopBack(); n != nil {
		q.used -= uint64(n.Size)
		delete(q.index, n.Key)
		q.notify(n.Key, n.Size, int(n.Freq), uint64(n.Aux))
	}
}

// Contains implements Policy.
func (q *TwoQ) Contains(key uint64) bool {
	_, ok := q.index[key]
	return ok
}

// Delete implements Policy.
func (q *TwoQ) Delete(key uint64) {
	e, ok := q.index[key]
	if !ok {
		return
	}
	if e.inAm {
		q.am.Remove(e.node)
	} else {
		q.a1in.Remove(e.node)
		q.a1inUsed -= uint64(e.node.Size)
	}
	q.used -= uint64(e.node.Size)
	delete(q.index, key)
}

// Len returns the number of cached objects.
func (q *TwoQ) Len() int { return len(q.index) }
