package policy

import "s3fifo/internal/sketch"

import "s3fifo/internal/list"

// TinyLFU implements W-TinyLFU (Einziger, Friedman & Manes, TOS'17) as
// evaluated in §5.2: an LRU admission window (1% of capacity by default,
// 10% for the "TinyLFU-0.1" variant), a count-min sketch with doorkeeper
// estimating frequencies over a sliding window, and an SLRU main cache
// (20% probation / 80% protected). Objects evicted from the window duel
// the probation victim: the less frequent one is discarded.
type TinyLFU struct {
	base
	window     *list.List
	probation  *list.List
	protected  *list.List
	windowUsed uint64
	windowCap  uint64
	mainUsed   uint64
	mainCap    uint64
	protUsed   uint64
	protCap    uint64
	index      map[uint64]*tlfuEntry
	cm         *sketch.CountMin
	door       *sketch.Doorkeeper
	demote     DemotionObserver
}

// SetDemotionObserver implements DemotionTracker: the admission window is
// TinyLFU's probationary region.
func (t *TinyLFU) SetDemotionObserver(o DemotionObserver) { t.demote = o }

type tlfuRegion uint8

const (
	tlfuWindow tlfuRegion = iota
	tlfuProbation
	tlfuProtected
)

type tlfuEntry struct {
	node   *list.Node
	region tlfuRegion
}

// NewTinyLFU returns a W-TinyLFU cache with the given window fraction.
func NewTinyLFU(capacity uint64, windowFrac float64) *TinyLFU {
	name := "tinylfu"
	if windowFrac >= 0.05 {
		name = "tinylfu-0.1"
	}
	windowCap := uint64(float64(capacity) * windowFrac)
	if windowCap < 1 {
		windowCap = 1
	}
	if windowCap >= capacity {
		windowCap = capacity - 1
	}
	mainCap := capacity - windowCap
	protCap := mainCap * 8 / 10
	entries := int(capacity)
	if entries > 1<<21 {
		entries = 1 << 21
	}
	return &TinyLFU{
		base:      base{name: name, capacity: capacity},
		window:    list.New(),
		probation: list.New(),
		protected: list.New(),
		windowCap: windowCap,
		mainCap:   mainCap,
		protCap:   protCap,
		index:     make(map[uint64]*tlfuEntry),
		cm:        sketch.NewCountMin(entries),
		door:      sketch.NewDoorkeeper(entries),
	}
}

// frequency estimates key's recent popularity; the doorkeeper contributes
// one count for keys it has absorbed.
func (t *TinyLFU) frequency(key uint64) int {
	f := int(t.cm.Estimate(key))
	return f
}

// recordAccess feeds the frequency sketch through the doorkeeper.
func (t *TinyLFU) recordAccess(key uint64) {
	if t.door.Allow(key) {
		t.cm.Add(key)
	}
}

// Request implements Policy.
func (t *TinyLFU) Request(key uint64, size uint32) bool {
	t.clock++
	t.recordAccess(key)
	if e, ok := t.index[key]; ok {
		e.node.Freq++
		switch e.region {
		case tlfuWindow:
			t.window.MoveToFront(e.node)
		case tlfuProbation:
			t.probation.Remove(e.node)
			t.protected.PushFront(e.node)
			e.region = tlfuProtected
			t.protUsed += uint64(e.node.Size)
			t.demoteProtected()
		case tlfuProtected:
			t.protected.MoveToFront(e.node)
		}
		return true
	}
	if uint64(size) > t.capacity {
		return false
	}
	n := &list.Node{Key: key, Size: size, Aux: int64(t.clock)}
	t.index[key] = &tlfuEntry{node: n, region: tlfuWindow}
	t.window.PushFront(n)
	t.windowUsed += uint64(size)
	t.used += uint64(size)
	for t.windowUsed > t.windowCap {
		t.overflowWindow()
	}
	return false
}

// demoteProtected pushes protected overflow back to probation.
func (t *TinyLFU) demoteProtected() {
	for t.protUsed > t.protCap {
		n := t.protected.PopBack()
		if n == nil {
			return
		}
		t.protUsed -= uint64(n.Size)
		t.probation.PushFront(n)
		t.index[n.Key].region = tlfuProbation
	}
}

// overflowWindow takes the window's LRU candidate and duels it against
// main-cache victims by sketch frequency.
func (t *TinyLFU) overflowWindow() {
	cand := t.window.PopBack()
	if cand == nil {
		return
	}
	t.windowUsed -= uint64(cand.Size)
	candFreq := t.frequency(cand.Key)
	for t.mainUsed+uint64(cand.Size) > t.mainCap {
		victim := t.probation.Back()
		if victim == nil {
			victim = t.protected.Back()
		}
		if victim == nil {
			// Main cache degenerate (candidate bigger than main): drop it.
			t.drop(cand)
			return
		}
		if candFreq > t.frequency(victim.Key) {
			t.evictMainVictim(victim)
			continue
		}
		t.drop(cand)
		return
	}
	t.probation.PushFront(cand)
	t.index[cand.Key].region = tlfuProbation
	t.mainUsed += uint64(cand.Size)
	if t.demote != nil {
		t.demote(Demotion{Key: cand.Key, Entered: uint64(cand.Aux), Left: t.clock, ToMain: true})
	}
}

// evictMainVictim removes a main-cache resident entirely.
func (t *TinyLFU) evictMainVictim(victim *list.Node) {
	e := t.index[victim.Key]
	if e.region == tlfuProtected {
		t.protected.Remove(victim)
		t.protUsed -= uint64(victim.Size)
	} else {
		t.probation.Remove(victim)
	}
	t.mainUsed -= uint64(victim.Size)
	t.used -= uint64(victim.Size)
	delete(t.index, victim.Key)
	t.notify(victim.Key, victim.Size, int(victim.Freq), uint64(victim.Aux))
}

// drop discards a window candidate rejected by the admission duel.
func (t *TinyLFU) drop(cand *list.Node) {
	t.used -= uint64(cand.Size)
	delete(t.index, cand.Key)
	if t.demote != nil {
		t.demote(Demotion{Key: cand.Key, Entered: uint64(cand.Aux), Left: t.clock, ToMain: false})
	}
	t.notify(cand.Key, cand.Size, int(cand.Freq), uint64(cand.Aux))
}

// Contains implements Policy.
func (t *TinyLFU) Contains(key uint64) bool {
	_, ok := t.index[key]
	return ok
}

// Delete implements Policy.
func (t *TinyLFU) Delete(key uint64) {
	e, ok := t.index[key]
	if !ok {
		return
	}
	switch e.region {
	case tlfuWindow:
		t.window.Remove(e.node)
		t.windowUsed -= uint64(e.node.Size)
	case tlfuProbation:
		t.probation.Remove(e.node)
		t.mainUsed -= uint64(e.node.Size)
	case tlfuProtected:
		t.protected.Remove(e.node)
		t.protUsed -= uint64(e.node.Size)
		t.mainUsed -= uint64(e.node.Size)
	}
	t.used -= uint64(e.node.Size)
	delete(t.index, key)
}

// Len returns the number of cached objects.
func (t *TinyLFU) Len() int { return len(t.index) }
