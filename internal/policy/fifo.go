package policy

import "s3fifo/internal/list"

// FIFO evicts objects in strict insertion order. It is the reduction
// baseline of the paper's evaluation (§5.1.2): every other algorithm is
// reported as a miss-ratio reduction relative to FIFO.
type FIFO struct {
	base
	queue *list.List
	index map[uint64]*list.Node
}

// NewFIFO returns a FIFO cache with the given byte capacity.
func NewFIFO(capacity uint64) *FIFO {
	return &FIFO{
		base:  base{name: "fifo", capacity: capacity},
		queue: list.New(),
		index: make(map[uint64]*list.Node),
	}
}

// Request implements Policy.
func (f *FIFO) Request(key uint64, size uint32) bool {
	f.clock++
	if n, ok := f.index[key]; ok {
		n.Freq++
		return true
	}
	if uint64(size) > f.capacity {
		return false // cannot fit at all; bypass
	}
	for f.used+uint64(size) > f.capacity {
		f.evict()
	}
	n := &list.Node{Key: key, Size: size, Aux: int64(f.clock)}
	f.queue.PushFront(n)
	f.index[key] = n
	f.used += uint64(size)
	return false
}

func (f *FIFO) evict() {
	n := f.queue.PopBack()
	if n == nil {
		return
	}
	delete(f.index, n.Key)
	f.used -= uint64(n.Size)
	f.notify(n.Key, n.Size, int(n.Freq), uint64(n.Aux))
}

// Contains implements Policy.
func (f *FIFO) Contains(key uint64) bool {
	_, ok := f.index[key]
	return ok
}

// Delete implements Policy.
func (f *FIFO) Delete(key uint64) {
	if n, ok := f.index[key]; ok {
		f.queue.Remove(n)
		delete(f.index, key)
		f.used -= uint64(n.Size)
	}
}

// Len returns the number of cached objects.
func (f *FIFO) Len() int { return f.queue.Len() }
