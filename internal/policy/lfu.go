package policy

import "container/heap"

// LFUDA implements LFU with Dynamic Aging (Arlitt et al.), the practical
// LFU variant deployed in web proxies: each object's priority is its
// frequency plus a global age offset L, and L rises to the priority of
// each evicted object. The aging term lets the cache shed objects that
// were popular long ago — plain LFU's classic failure mode.
type LFUDA struct {
	base
	entries map[uint64]*lfuEntry
	pq      lfuHeap
	age     float64 // the global inflation term L
}

type lfuEntry struct {
	key      uint64
	size     uint32
	priority float64
	freq     int
	inserted uint64
	version  uint64
}

type lfuHeapItem struct {
	key      uint64
	priority float64
	version  uint64
}

type lfuHeap []lfuHeapItem

func (h lfuHeap) Len() int           { return len(h) }
func (h lfuHeap) Less(i, j int) bool { return h[i].priority < h[j].priority }
func (h lfuHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *lfuHeap) Push(x any)        { *h = append(*h, x.(lfuHeapItem)) }
func (h *lfuHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// NewLFUDA returns an LFU-with-dynamic-aging cache.
func NewLFUDA(capacity uint64) *LFUDA {
	return &LFUDA{
		base:    base{name: "lfu-da", capacity: capacity},
		entries: make(map[uint64]*lfuEntry),
	}
}

func (l *LFUDA) bump(e *lfuEntry) {
	e.freq++
	e.priority = l.age + float64(e.freq)
	e.version++
	heap.Push(&l.pq, lfuHeapItem{key: e.key, priority: e.priority, version: e.version})
}

// Request implements Policy.
func (l *LFUDA) Request(key uint64, size uint32) bool {
	l.clock++
	if e, ok := l.entries[key]; ok {
		l.bump(e)
		return true
	}
	if uint64(size) > l.capacity {
		return false
	}
	for l.used+uint64(size) > l.capacity {
		l.evict()
	}
	e := &lfuEntry{key: key, size: size, inserted: l.clock}
	l.entries[key] = e
	l.used += uint64(size)
	l.bump(e)
	return false
}

func (l *LFUDA) evict() {
	for l.pq.Len() > 0 {
		item := heap.Pop(&l.pq).(lfuHeapItem)
		e, ok := l.entries[item.key]
		if !ok || e.version != item.version {
			continue
		}
		l.age = e.priority // dynamic aging: L rises to the victim's priority
		delete(l.entries, e.key)
		l.used -= uint64(e.size)
		l.notify(e.key, e.size, e.freq-1, e.inserted)
		return
	}
}

// Contains implements Policy.
func (l *LFUDA) Contains(key uint64) bool {
	_, ok := l.entries[key]
	return ok
}

// Delete implements Policy.
func (l *LFUDA) Delete(key uint64) {
	if e, ok := l.entries[key]; ok {
		delete(l.entries, key)
		l.used -= uint64(e.size)
	}
}

// Len returns the number of cached objects.
func (l *LFUDA) Len() int { return len(l.entries) }

// GDSF implements GreedyDual-Size-Frequency (Cherkasova; a descendant of
// Cao & Irani's GreedyDual-Size): priority = L + freq·cost/size with unit
// cost, so small popular objects are retained preferentially — the
// classic size-aware web-proxy policy (§7's cost-aware line of work).
type GDSF struct {
	LFUDA
}

// NewGDSF returns a GreedyDual-Size-Frequency cache.
func NewGDSF(capacity uint64) *GDSF {
	g := &GDSF{LFUDA: LFUDA{
		base:    base{name: "gdsf", capacity: capacity},
		entries: make(map[uint64]*lfuEntry),
	}}
	return g
}

func (g *GDSF) bump(e *lfuEntry) {
	e.freq++
	e.priority = g.age + float64(e.freq)/float64(e.size)
	e.version++
	heap.Push(&g.pq, lfuHeapItem{key: e.key, priority: e.priority, version: e.version})
}

// Request implements Policy (overrides LFUDA's priority formula).
func (g *GDSF) Request(key uint64, size uint32) bool {
	g.clock++
	if e, ok := g.entries[key]; ok {
		g.bump(e)
		return true
	}
	if uint64(size) > g.capacity {
		return false
	}
	for g.used+uint64(size) > g.capacity {
		g.evict()
	}
	e := &lfuEntry{key: key, size: size, inserted: g.clock}
	g.entries[key] = e
	g.used += uint64(size)
	g.bump(e)
	return false
}
