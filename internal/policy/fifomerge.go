package policy

// FIFOMerge implements Segcache's merge-based eviction (Yang, Yue &
// Vinayak, NSDI'21), the log-structured FIFO variant evaluated in §5.2:
// objects append to fixed-size segments chained in FIFO order; when space
// is needed, the oldest few segments are merged — the most frequently
// accessed ~1/mergeN of their objects are retained (with frequency halved)
// into a single new segment and the rest are evicted. There is no ghost
// queue and no quick demotion, which is why the paper finds its efficiency
// close to LRU and poor on scan-heavy block workloads.
type FIFOMerge struct {
	base
	segments []*fmSegment // segments[0] is the oldest
	segBytes uint64       // target bytes per segment
	mergeN   int          // segments merged per eviction pass
	index    map[uint64]*fmObject
}

type fmSegment struct {
	objs  []*fmObject
	bytes uint64
}

type fmObject struct {
	key      uint64
	size     uint32
	freq     int32
	totFreq  int32
	inserted uint64
	dead     bool // deleted or superseded; space reclaimed at merge
}

// NewFIFOMerge returns a Segcache-style FIFO-merge cache with 16 segments
// and a merge factor of 4.
func NewFIFOMerge(capacity uint64) *FIFOMerge {
	segBytes := capacity / 16
	if segBytes < 1 {
		segBytes = 1
	}
	return &FIFOMerge{
		base:     base{name: "fifo-merge", capacity: capacity},
		segBytes: segBytes,
		mergeN:   4,
		index:    make(map[uint64]*fmObject),
	}
}

// Request implements Policy.
func (f *FIFOMerge) Request(key uint64, size uint32) bool {
	f.clock++
	if o, ok := f.index[key]; ok && !o.dead {
		o.freq++
		o.totFreq++
		return true
	}
	if uint64(size) > f.capacity {
		return false
	}
	for f.used+uint64(size) > f.capacity {
		f.merge()
	}
	o := &fmObject{key: key, size: size, inserted: f.clock}
	f.index[key] = o
	f.appendObject(o)
	f.used += uint64(size)
	return false
}

// appendObject writes o into the active (newest) segment.
func (f *FIFOMerge) appendObject(o *fmObject) {
	if len(f.segments) == 0 || f.segments[len(f.segments)-1].bytes+uint64(o.size) > f.segBytes {
		f.segments = append(f.segments, &fmSegment{})
	}
	seg := f.segments[len(f.segments)-1]
	seg.objs = append(seg.objs, o)
	seg.bytes += uint64(o.size)
}

// merge compacts the oldest mergeN segments into one retained segment.
func (f *FIFOMerge) merge() {
	n := f.mergeN
	if n > len(f.segments) {
		n = len(f.segments)
	}
	if n == 0 {
		return
	}
	var live []*fmObject
	for _, seg := range f.segments[:n] {
		for _, o := range seg.objs {
			if !o.dead {
				live = append(live, o)
			}
		}
	}
	f.segments = append([]*fmSegment{}, f.segments[n:]...)

	// Retain up to one segment's worth of the highest-frequency objects.
	retained := &fmSegment{}
	// Selection: frequency-descending insertion into the retained segment
	// while it fits. A simple threshold pass avoids a full sort: find the
	// cutoff frequency by counting.
	maxFreq := int32(0)
	for _, o := range live {
		if o.freq > maxFreq {
			maxFreq = o.freq
		}
	}
	kept := map[*fmObject]bool{}
	for want := maxFreq; want > 0 && retained.bytes < f.segBytes; want-- {
		for _, o := range live {
			if o.freq != want || kept[o] {
				continue
			}
			if retained.bytes+uint64(o.size) > f.segBytes {
				continue
			}
			o.freq /= 2 // decay on merge, as Segcache does
			retained.objs = append(retained.objs, o)
			retained.bytes += uint64(o.size)
			kept[o] = true
		}
	}
	for _, o := range live {
		if kept[o] {
			continue
		}
		delete(f.index, o.key)
		f.used -= uint64(o.size)
		f.notify(o.key, o.size, int(o.totFreq), o.inserted)
	}
	if len(retained.objs) > 0 {
		// The merged segment takes the oldest position.
		f.segments = append([]*fmSegment{retained}, f.segments...)
	}
}

// Contains implements Policy.
func (f *FIFOMerge) Contains(key uint64) bool {
	o, ok := f.index[key]
	return ok && !o.dead
}

// Delete implements Policy. The slot is tombstoned; bytes are reclaimed
// immediately (the simulator models space, not log offsets).
func (f *FIFOMerge) Delete(key uint64) {
	if o, ok := f.index[key]; ok && !o.dead {
		o.dead = true
		delete(f.index, key)
		f.used -= uint64(o.size)
	}
}

// Len returns the number of cached objects.
func (f *FIFOMerge) Len() int { return len(f.index) }
