package policy

import (
	"container/heap"
	"math"

	"s3fifo/internal/list"
	"s3fifo/internal/sketch"
)

// CACHEUS implements the CACHEUS algorithm (Rodriguez et al., FAST'21),
// evaluated in §5.2. Like LeCaR it arbitrates between two experts with
// regret-based weights, but with the FAST'21 refinements: the experts are
// SR-LRU (scan-resistant LRU — new objects live in a probationary region
// and must be reused to enter the protected region) and CR-LFU
// (churn-resistant LFU — frequency ties break toward keeping the most
// recently used), and the learning rate adapts: it is perturbed upward
// when the recent hit ratio degrades and decays toward stability
// otherwise, removing LeCaR's fixed-λ tuning knob.
type CACHEUS struct {
	base
	// Shared residents with SR-LRU structure: probation + protected.
	probation  *list.List
	protected  *list.List
	protBytes  uint64
	protTarget uint64
	index      map[uint64]*cacheusEntry
	// CR-LFU view over the same residents.
	pq lecarHeap
	// Expert histories and weights.
	hLRU, hLFU *ghostList
	ghostTime  map[uint64]uint64
	wLRU       float64
	lr         float64
	// Adaptive learning rate bookkeeping.
	windowHits, windowReqs uint64
	prevHitRate            float64
	state                  uint64
}

type cacheusEntry struct {
	node        *list.Node
	inProtected bool
	freq        int32
	version     uint64
}

// NewCACHEUS returns a CACHEUS cache.
func NewCACHEUS(capacity uint64) *CACHEUS {
	return &CACHEUS{
		base:       base{name: "cacheus", capacity: capacity},
		probation:  list.New(),
		protected:  list.New(),
		protTarget: capacity * 2 / 3,
		index:      make(map[uint64]*cacheusEntry),
		hLRU:       newGhostList(capacity / 2),
		hLFU:       newGhostList(capacity / 2),
		ghostTime:  make(map[uint64]uint64),
		wLRU:       0.5,
		lr:         0.1,
		state:      0x1F83D9ABFB41BD6B,
	}
}

func (c *CACHEUS) rand() float64 {
	c.state = sketch.Hash(c.state, 0xCafe5)
	return float64(c.state>>11) / float64(1<<53)
}

// adaptLR implements the CACHEUS learning-rate update: compare the hit
// ratio of the last window against the one before; degradation perturbs
// the learning rate upward, improvement lets it decay.
func (c *CACHEUS) adaptLR() {
	window := c.capacity
	if window < 128 {
		window = 128
	}
	if c.windowReqs < window {
		return
	}
	hitRate := float64(c.windowHits) / float64(c.windowReqs)
	switch {
	case hitRate < c.prevHitRate:
		c.lr = math.Min(c.lr*1.5+0.001, 1.0)
	case hitRate > c.prevHitRate:
		c.lr = math.Max(c.lr*0.9, 0.001)
	}
	c.prevHitRate = hitRate
	c.windowHits, c.windowReqs = 0, 0
}

// adjust applies the regret update after a ghost hit.
func (c *CACHEUS) adjust(hitLRUGhost bool, evictedAt uint64) {
	t := float64(c.clock - evictedAt)
	d := math.Pow(0.005, 1/float64(maxU64c(c.capacity, 1)))
	reward := math.Pow(d, t)
	wLRU, wLFU := c.wLRU, 1-c.wLRU
	if hitLRUGhost {
		wLFU *= math.Exp(c.lr * reward)
	} else {
		wLRU *= math.Exp(c.lr * reward)
	}
	c.wLRU = wLRU / (wLRU + wLFU)
}

// Request implements Policy.
func (c *CACHEUS) Request(key uint64, size uint32) bool {
	c.clock++
	c.windowReqs++
	c.adaptLR()
	if e, ok := c.index[key]; ok {
		c.windowHits++
		e.freq++
		e.node.Freq++
		e.version++
		heap.Push(&c.pq, lecarHeapItem{key: key, freq: e.freq, last: c.clock, version: e.version})
		if e.inProtected {
			c.protected.MoveToFront(e.node)
		} else {
			// SR-LRU: reuse promotes out of probation.
			c.probation.Remove(e.node)
			e.inProtected = true
			c.protected.PushFront(e.node)
			c.protBytes += uint64(e.node.Size)
			c.demoteProtected()
		}
		return true
	}
	if uint64(size) > c.capacity {
		return false
	}
	if c.hLRU.contains(key) {
		c.adjust(true, c.ghostTime[key])
		c.hLRU.remove(key)
		delete(c.ghostTime, key)
	} else if c.hLFU.contains(key) {
		c.adjust(false, c.ghostTime[key])
		c.hLFU.remove(key)
		delete(c.ghostTime, key)
	}
	for c.used+uint64(size) > c.capacity {
		c.evict()
	}
	e := &cacheusEntry{node: &list.Node{Key: key, Size: size, Aux: int64(c.clock)}, freq: 1}
	c.index[key] = e
	c.probation.PushFront(e.node)
	c.used += uint64(size)
	heap.Push(&c.pq, lecarHeapItem{key: key, freq: 1, last: c.clock, version: 0})
	return false
}

// demoteProtected keeps the protected region within its budget.
func (c *CACHEUS) demoteProtected() {
	for c.protBytes > c.protTarget {
		n := c.protected.PopBack()
		if n == nil {
			return
		}
		c.protBytes -= uint64(n.Size)
		c.index[n.Key].inProtected = false
		c.probation.PushFront(n)
	}
}

// evict chooses an expert by weight: SR-LRU evicts the probation tail
// (falling back to protected), CR-LFU evicts the lowest-frequency object
// with ties broken toward evicting the LEAST recently used (keeping the
// most recent — churn resistance).
func (c *CACHEUS) evict() {
	if c.rand() < c.wLRU {
		n := c.probation.Back()
		if n == nil {
			n = c.protected.Back()
		}
		if n == nil {
			return
		}
		c.removeResident(n.Key, c.hLRU)
		return
	}
	for c.pq.Len() > 0 {
		item := heap.Pop(&c.pq).(lecarHeapItem)
		e, ok := c.index[item.key]
		if !ok || e.version != item.version {
			continue
		}
		c.removeResident(item.key, c.hLFU)
		return
	}
	if n := c.probation.Back(); n != nil {
		c.removeResident(n.Key, c.hLRU)
	}
}

func (c *CACHEUS) removeResident(key uint64, ghost *ghostList) {
	e := c.index[key]
	if e.inProtected {
		c.protected.Remove(e.node)
		c.protBytes -= uint64(e.node.Size)
	} else {
		c.probation.Remove(e.node)
	}
	delete(c.index, key)
	c.used -= uint64(e.node.Size)
	ghost.push(key, e.node.Size)
	c.ghostTime[key] = c.clock
	if len(c.ghostTime) > 4*(c.hLRU.len()+c.hLFU.len()+16) {
		for k := range c.ghostTime {
			if !c.hLRU.contains(k) && !c.hLFU.contains(k) {
				delete(c.ghostTime, k)
			}
		}
	}
	c.notify(key, e.node.Size, int(e.node.Freq), uint64(e.node.Aux))
}

// Contains implements Policy.
func (c *CACHEUS) Contains(key uint64) bool {
	_, ok := c.index[key]
	return ok
}

// Delete implements Policy.
func (c *CACHEUS) Delete(key uint64) {
	e, ok := c.index[key]
	if !ok {
		return
	}
	if e.inProtected {
		c.protected.Remove(e.node)
		c.protBytes -= uint64(e.node.Size)
	} else {
		c.probation.Remove(e.node)
	}
	delete(c.index, key)
	c.used -= uint64(e.node.Size)
}

// Len returns the number of cached objects.
func (c *CACHEUS) Len() int { return len(c.index) }

// LearningRate returns the current adaptive learning rate (for tests).
func (c *CACHEUS) LearningRate() float64 { return c.lr }

func maxU64c(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
