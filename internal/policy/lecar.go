package policy

import (
	"container/heap"
	"math"

	"s3fifo/internal/list"
	"s3fifo/internal/sketch"
)

// LeCaR implements the Learning Cache Replacement algorithm (Vietri et
// al., HotStorage'18): every eviction chooses between an LRU expert and an
// LFU expert by sampling from regret-minimizing weights. Each expert has a
// ghost history; a request that hits a ghost means the corresponding
// expert's past decision was wrong, so its weight decays multiplicatively
// with a reward discounted by the time since the eviction.
type LeCaR struct {
	base
	queue     *list.List // LRU order over residents
	index     map[uint64]*lecarEntry
	heap      lecarHeap // LFU order over residents (lazy)
	hLRU      *ghostList
	hLFU      *ghostList
	ghostTime map[uint64]uint64 // eviction time of ghost entries
	wLRU      float64
	lambda    float64
	d         float64 // per-step discount
	state     uint64  // PRNG state for expert sampling
}

type lecarEntry struct {
	node    *list.Node
	freq    int32
	version uint64
}

type lecarHeapItem struct {
	key     uint64
	freq    int32
	last    uint64 // tie-break: older is evicted first
	version uint64
}

type lecarHeap []lecarHeapItem

func (h lecarHeap) Len() int { return len(h) }
func (h lecarHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].last < h[j].last
}
func (h lecarHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *lecarHeap) Push(x any)   { *h = append(*h, x.(lecarHeapItem)) }
func (h *lecarHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// NewLeCaR returns a LeCaR cache with the original paper's learning rate
// (0.45) and a discount rate of 0.005^(1/N) where N approximates the cache
// size in objects.
func NewLeCaR(capacity uint64) *LeCaR {
	n := float64(capacity)
	if n < 1 {
		n = 1
	}
	return &LeCaR{
		base:      base{name: "lecar", capacity: capacity},
		queue:     list.New(),
		index:     make(map[uint64]*lecarEntry),
		hLRU:      newGhostList(capacity),
		hLFU:      newGhostList(capacity),
		ghostTime: make(map[uint64]uint64),
		wLRU:      0.5,
		lambda:    0.45,
		d:         math.Pow(0.005, 1/n),
		state:     0x243F6A8885A308D3,
	}
}

func (l *LeCaR) rand() float64 {
	l.state = sketch.Hash(l.state, 0xBEEF)
	return float64(l.state>>11) / float64(1<<53)
}

// adjust applies the multiplicative-weights regret update after a ghost
// hit on the named expert's history.
func (l *LeCaR) adjust(hitLRUGhost bool, evictedAt uint64) {
	t := float64(l.clock - evictedAt)
	reward := math.Pow(l.d, t)
	wLRU, wLFU := l.wLRU, 1-l.wLRU
	if hitLRUGhost {
		// LRU's decision was wrong: boost LFU.
		wLFU *= math.Exp(l.lambda * reward)
	} else {
		wLRU *= math.Exp(l.lambda * reward)
	}
	l.wLRU = wLRU / (wLRU + wLFU)
}

// Request implements Policy.
func (l *LeCaR) Request(key uint64, size uint32) bool {
	l.clock++
	if e, ok := l.index[key]; ok {
		e.freq++
		e.node.Freq++
		e.version++
		l.queue.MoveToFront(e.node)
		heap.Push(&l.heap, lecarHeapItem{key: key, freq: e.freq, last: l.clock, version: e.version})
		return true
	}
	if uint64(size) > l.capacity {
		return false
	}
	if l.hLRU.contains(key) {
		l.adjust(true, l.ghostTime[key])
		l.hLRU.remove(key)
		delete(l.ghostTime, key)
	} else if l.hLFU.contains(key) {
		l.adjust(false, l.ghostTime[key])
		l.hLFU.remove(key)
		delete(l.ghostTime, key)
	}
	for l.used+uint64(size) > l.capacity {
		l.evict()
	}
	e := &lecarEntry{node: &list.Node{Key: key, Size: size, Aux: int64(l.clock)}, freq: 1}
	l.index[key] = e
	l.queue.PushFront(e.node)
	l.used += uint64(size)
	heap.Push(&l.heap, lecarHeapItem{key: key, freq: 1, last: l.clock, version: 0})
	return false
}

func (l *LeCaR) evict() {
	useLRU := l.rand() < l.wLRU
	if useLRU {
		n := l.queue.Back()
		if n == nil {
			return
		}
		l.removeResident(n.Key, l.hLRU)
		return
	}
	// LFU expert: pop lazily-invalidated heap entries.
	for l.heap.Len() > 0 {
		item := heap.Pop(&l.heap).(lecarHeapItem)
		e, ok := l.index[item.key]
		if !ok || e.version != item.version {
			continue
		}
		l.removeResident(item.key, l.hLFU)
		return
	}
	// Heap exhausted (all stale): fall back to LRU.
	if n := l.queue.Back(); n != nil {
		l.removeResident(n.Key, l.hLRU)
	}
}

func (l *LeCaR) removeResident(key uint64, ghost *ghostList) {
	e := l.index[key]
	l.queue.Remove(e.node)
	delete(l.index, key)
	l.used -= uint64(e.node.Size)
	ghost.push(key, e.node.Size)
	l.ghostTime[key] = l.clock
	l.gcGhostTimes()
	l.notify(key, e.node.Size, int(e.node.Freq), uint64(e.node.Aux))
}

// gcGhostTimes drops timestamps for entries no longer in either history.
func (l *LeCaR) gcGhostTimes() {
	if len(l.ghostTime) < 4*(l.hLRU.len()+l.hLFU.len()+16) {
		return
	}
	for k := range l.ghostTime {
		if !l.hLRU.contains(k) && !l.hLFU.contains(k) {
			delete(l.ghostTime, k)
		}
	}
}

// Contains implements Policy.
func (l *LeCaR) Contains(key uint64) bool {
	_, ok := l.index[key]
	return ok
}

// Delete implements Policy.
func (l *LeCaR) Delete(key uint64) {
	if e, ok := l.index[key]; ok {
		l.queue.Remove(e.node)
		delete(l.index, key)
		l.used -= uint64(e.node.Size)
	}
}

// Len returns the number of cached objects.
func (l *LeCaR) Len() int { return len(l.index) }

// WeightLRU returns the current LRU expert weight (for tests).
func (l *LeCaR) WeightLRU() float64 { return l.wLRU }
