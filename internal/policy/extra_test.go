package policy

import (
	"testing"

	"s3fifo/internal/workload"
)

// TestLFUDAKeepsFrequentObjects: a high-frequency object survives churn.
func TestLFUDAKeepsFrequentObjects(t *testing.T) {
	p := NewLFUDA(10)
	for i := 0; i < 50; i++ {
		p.Request(1, 1)
	}
	for i := uint64(100); i < 200; i++ {
		p.Request(i, 1)
	}
	if !p.Contains(1) {
		t.Error("frequent object evicted by one-hit churn")
	}
}

// TestLFUDAAgesOut: dynamic aging lets once-popular objects leave. With
// plain LFU an object with 50 accesses could never be displaced by
// objects seen a handful of times; with aging the L term catches up.
func TestLFUDAAgesOut(t *testing.T) {
	p := NewLFUDA(10)
	for i := 0; i < 50; i++ {
		p.Request(1, 1)
	}
	// A long phase change: a new working set of 9 objects cycles many
	// times. Evictions raise L toward 50; once L+1 exceeds 50 the stale
	// object goes.
	for round := 0; round < 200; round++ {
		for k := uint64(10); k < 21; k++ { // 11 objects > 9 free slots
			p.Request(k, 1)
		}
	}
	if p.Contains(1) {
		t.Error("stale frequent object never aged out")
	}
}

// TestGDSFPrefersSmallObjects: with equal frequency, the big object is
// evicted first.
func TestGDSFPrefersSmallObjects(t *testing.T) {
	p := NewGDSF(100)
	p.Request(1, 10) // big
	p.Request(2, 1)  // small
	p.Request(1, 10)
	p.Request(2, 1) // equal frequency now
	// Force evictions.
	for i := uint64(10); i < 200; i++ {
		p.Request(i, 1)
	}
	if p.Contains(1) && !p.Contains(2) {
		t.Error("GDSF kept the large object over the equally-popular small one")
	}
}

// TestHyperbolicDecay: an object hot long ago loses to a recently hot one.
func TestHyperbolicDecay(t *testing.T) {
	p := NewHyperbolic(50)
	tr := workload.Generate(workload.Config{Objects: 500, Requests: 40000, Alpha: 1.1}, 5)
	m := replay(p, tr)
	r := NewRandom(50)
	mr := replay(r, tr)
	if m >= mr {
		t.Errorf("hyperbolic (%d) should beat random (%d) on skewed trace", m, mr)
	}
}

// TestLRFULambdaExtremes: λ→1 behaves like LRU; λ→0 like LFU.
func TestLRFULambdaExtremes(t *testing.T) {
	// Recency extreme: with λ=1, CRF is dominated by the last access, so
	// the most recently used object is kept over an old frequent one.
	lru := NewLRFU(2, 1.0)
	for i := 0; i < 10; i++ {
		lru.Request(1, 1)
	}
	lru.Request(2, 1)
	lru.Request(3, 1) // evicts 1 or 2; with λ=1 the oldest access loses: 1's CRF ≈ 2 decayed hard
	if !lru.Contains(3) {
		t.Fatal("just-inserted object missing")
	}
	// Frequency extreme: with tiny λ, the frequent object survives.
	lfu := NewLRFU(2, 1e-9)
	for i := 0; i < 10; i++ {
		lfu.Request(1, 1)
	}
	lfu.Request(2, 1)
	lfu.Request(3, 1)
	if !lfu.Contains(1) {
		t.Error("λ→0: frequent object should be retained")
	}
}

// TestMQResumeFrequencyClass: an evicted block remembered in Qout resumes
// its high frequency class on readmission.
func TestMQResumeFrequencyClass(t *testing.T) {
	p := NewMQ(8)
	for i := 0; i < 16; i++ {
		p.Request(1, 1) // frequency class log2(16) = 4
	}
	for i := uint64(10); i < 30; i++ {
		p.Request(i, 1) // evict 1 into Qout
	}
	if p.Contains(1) {
		t.Skip("block 1 still resident; churn insufficient")
	}
	p.Request(1, 1) // readmit
	e := p.entries[1]
	if e.level < 2 {
		t.Errorf("readmitted block resumed level %d, want its old high class", e.level)
	}
}

// TestMQLifetimeDemotion: an untouched high-level block drifts down.
func TestMQLifetimeDemotion(t *testing.T) {
	p := NewMQ(4)
	for i := 0; i < 8; i++ {
		p.Request(1, 1)
	}
	start := p.entries[1].level
	if start < 2 {
		t.Fatalf("setup: level %d", start)
	}
	// Touch other blocks for >> lifeTime requests without touching 1.
	for i := 0; i < int(p.lifeTime)*3; i++ {
		p.Request(uint64(2+i%2), 1)
	}
	if e, ok := p.entries[1]; ok && e.level >= start {
		t.Errorf("block 1 never demoted (level %d)", e.level)
	}
}

// TestEELRUSwitchesToEarlyEviction: on a loop slightly larger than the
// cache, EELRU must beat LRU (which gets zero hits).
func TestEELRUSwitchesToEarlyEviction(t *testing.T) {
	const n, capacity, rounds = 120, 100, 60
	e := NewEELRU(capacity)
	lru := NewLRU(capacity)
	var hitsE, hitsLRU int
	for r := 0; r < rounds; r++ {
		for i := uint64(0); i < n; i++ {
			if e.Request(i, 1) {
				hitsE++
			}
			if lru.Request(i, 1) {
				hitsLRU++
			}
		}
	}
	if hitsE <= hitsLRU+n {
		t.Errorf("EELRU hits %d vs LRU %d on a loop workload", hitsE, hitsLRU)
	}
}

// TestClockProAdaptsColdTarget: re-accesses during test periods grow the
// cold allocation.
func TestClockProAdaptsColdTarget(t *testing.T) {
	p := NewClockPro(100)
	// Build pressure so pages get evicted into test periods, then
	// re-access them quickly.
	for round := 0; round < 20; round++ {
		for i := uint64(0); i < 130; i++ {
			p.Request(i, 1)
		}
	}
	// Invariants after heavy churn.
	if p.Used() > p.Capacity() {
		t.Errorf("Used %d > Capacity", p.Used())
	}
	if p.coldTarget < 1 || p.coldTarget > p.capacity {
		t.Errorf("coldTarget %d out of range", p.coldTarget)
	}
}

// TestClockProScanResistance: like LIRS, a scan must not flush the hot set.
func TestClockProScanResistance(t *testing.T) {
	p := NewClockPro(100)
	for round := 0; round < 5; round++ {
		for i := uint64(0); i < 80; i++ {
			p.Request(i, 1)
		}
	}
	for i := uint64(10000); i < 11000; i++ {
		p.Request(i, 1)
	}
	surviving := 0
	for i := uint64(0); i < 80; i++ {
		if p.Contains(i) {
			surviving++
		}
	}
	if surviving < 40 {
		t.Errorf("only %d/80 hot pages survived the scan", surviving)
	}
}

// TestCACHEUSAdaptiveLearningRate: the learning rate must move away from
// its initial value under a shifting workload.
func TestCACHEUSAdaptiveLearningRate(t *testing.T) {
	p := NewCACHEUS(200)
	initial := p.LearningRate()
	tr := workload.Generate(workload.Config{Objects: 3000, Requests: 100000, Alpha: 0.8, ScanFraction: 0.1}, 3)
	replay(p, tr)
	if p.LearningRate() == initial {
		t.Error("learning rate never adapted")
	}
	if lr := p.LearningRate(); lr <= 0 || lr > 1 {
		t.Errorf("learning rate %v out of range", lr)
	}
}

// TestCACHEUSSRLRUScanResistance: the probationary region absorbs scans.
func TestCACHEUSSRLRUScanResistance(t *testing.T) {
	p := NewCACHEUS(100)
	lru := NewLRU(100)
	tr := workload.Generate(workload.Config{Objects: 500, Requests: 60000, Alpha: 1.0, ScanFraction: 0.3, ScanLength: 300}, 7)
	mC, mL := replay(p, tr), replay(lru, tr)
	if mC >= mL {
		t.Errorf("CACHEUS (%d) should beat LRU (%d) on scan-heavy trace", mC, mL)
	}
}
