package policy

import "s3fifo/internal/list"

// LRU evicts the least recently used object, promoting on every hit.
type LRU struct {
	base
	queue *list.List
	index map[uint64]*list.Node
}

// NewLRU returns an LRU cache with the given byte capacity.
func NewLRU(capacity uint64) *LRU {
	return &LRU{
		base:  base{name: "lru", capacity: capacity},
		queue: list.New(),
		index: make(map[uint64]*list.Node),
	}
}

// Request implements Policy.
func (l *LRU) Request(key uint64, size uint32) bool {
	l.clock++
	if n, ok := l.index[key]; ok {
		n.Freq++
		l.queue.MoveToFront(n)
		return true
	}
	if uint64(size) > l.capacity {
		return false
	}
	for l.used+uint64(size) > l.capacity {
		l.evict()
	}
	n := &list.Node{Key: key, Size: size, Aux: int64(l.clock)}
	l.queue.PushFront(n)
	l.index[key] = n
	l.used += uint64(size)
	return false
}

func (l *LRU) evict() {
	n := l.queue.PopBack()
	if n == nil {
		return
	}
	delete(l.index, n.Key)
	l.used -= uint64(n.Size)
	l.notify(n.Key, n.Size, int(n.Freq), uint64(n.Aux))
}

// Contains implements Policy.
func (l *LRU) Contains(key uint64) bool {
	_, ok := l.index[key]
	return ok
}

// Delete implements Policy.
func (l *LRU) Delete(key uint64) {
	if n, ok := l.index[key]; ok {
		l.queue.Remove(n)
		delete(l.index, key)
		l.used -= uint64(n.Size)
	}
}

// Len returns the number of cached objects.
func (l *LRU) Len() int { return l.queue.Len() }
