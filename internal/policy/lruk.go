package policy

import "container/heap"

// LRUK implements the LRU-K page replacement algorithm (O'Neil, O'Neil &
// Weikum, SIGMOD'93) for K=2 by default: the victim is the resident object
// whose K-th most recent reference is oldest; objects with fewer than K
// references sort before all others (backward K-distance = infinity) and
// break ties by oldest last reference. Access history is retained for
// recently evicted objects (the Retained Information Period) so a
// re-inserted object keeps its reference history.
type LRUK struct {
	base
	k        int
	entries  map[uint64]*lrukEntry // resident objects
	history  map[uint64]*lrukHist  // non-resident access history
	histCap  int
	histFIFO []uint64 // eviction order for history entries
	pq       lrukHeap
	version  uint64
}

type lrukHist struct {
	times []uint64 // last K access times, oldest first
}

type lrukEntry struct {
	key      uint64
	size     uint32
	times    []uint64
	freq     int
	inserted uint64
	version  uint64 // heap entries with stale versions are skipped
}

// kthTime returns the K-th most recent access time, or 0 when the object
// has fewer than K accesses (treated as infinitely old).
func (e *lrukEntry) kthTime(k int) uint64 {
	if len(e.times) < k {
		return 0
	}
	return e.times[len(e.times)-k]
}

type lrukHeapItem struct {
	key     uint64
	kth     uint64
	last    uint64
	version uint64
}

type lrukHeap []lrukHeapItem

func (h lrukHeap) Len() int { return len(h) }
func (h lrukHeap) Less(i, j int) bool {
	if h[i].kth != h[j].kth {
		return h[i].kth < h[j].kth
	}
	return h[i].last < h[j].last
}
func (h lrukHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *lrukHeap) Push(x any)   { *h = append(*h, x.(lrukHeapItem)) }
func (h *lrukHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// NewLRUK returns an LRU-K cache.
func NewLRUK(capacity uint64, k int) *LRUK {
	if k < 1 {
		k = 2
	}
	histCap := int(capacity)
	if histCap > 1<<20 {
		histCap = 1 << 20
	}
	return &LRUK{
		base:    base{name: "lru-2", capacity: capacity},
		k:       k,
		entries: make(map[uint64]*lrukEntry),
		history: make(map[uint64]*lrukHist),
		histCap: histCap,
	}
}

func (l *LRUK) record(e *lrukEntry) {
	e.times = append(e.times, l.clock)
	if len(e.times) > l.k {
		e.times = e.times[len(e.times)-l.k:]
	}
	e.version++
	l.version++
	heap.Push(&l.pq, lrukHeapItem{
		key: e.key, kth: e.kthTime(l.k), last: e.times[len(e.times)-1], version: e.version,
	})
}

// Request implements Policy.
func (l *LRUK) Request(key uint64, size uint32) bool {
	l.clock++
	if e, ok := l.entries[key]; ok {
		e.freq++
		l.record(e)
		return true
	}
	if uint64(size) > l.capacity {
		return false
	}
	for l.used+uint64(size) > l.capacity {
		l.evict()
	}
	e := &lrukEntry{key: key, size: size, inserted: l.clock}
	if h, ok := l.history[key]; ok {
		e.times = h.times
		delete(l.history, key)
	}
	l.entries[key] = e
	l.used += uint64(size)
	l.record(e)
	return false
}

func (l *LRUK) evict() {
	for l.pq.Len() > 0 {
		item := heap.Pop(&l.pq).(lrukHeapItem)
		e, ok := l.entries[item.key]
		if !ok || e.version != item.version {
			continue // stale heap entry
		}
		delete(l.entries, e.key)
		l.used -= uint64(e.size)
		l.retainHistory(e)
		l.notify(e.key, e.size, e.freq, e.inserted)
		return
	}
}

// retainHistory keeps the evicted object's reference times for the
// retained information period, bounded by histCap entries FIFO.
func (l *LRUK) retainHistory(e *lrukEntry) {
	if l.histCap == 0 {
		return
	}
	if len(l.histFIFO) >= l.histCap {
		old := l.histFIFO[0]
		l.histFIFO = l.histFIFO[1:]
		delete(l.history, old)
	}
	l.history[e.key] = &lrukHist{times: e.times}
	l.histFIFO = append(l.histFIFO, e.key)
}

// Contains implements Policy.
func (l *LRUK) Contains(key uint64) bool {
	_, ok := l.entries[key]
	return ok
}

// Delete implements Policy.
func (l *LRUK) Delete(key uint64) {
	if e, ok := l.entries[key]; ok {
		delete(l.entries, key)
		l.used -= uint64(e.size)
	}
}

// Len returns the number of cached objects.
func (l *LRUK) Len() int { return len(l.entries) }
