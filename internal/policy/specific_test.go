package policy

import (
	"testing"

	"s3fifo/internal/workload"
)

// TestLRUModelCheck compares LRU against a brute-force reference model.
func TestLRUModelCheck(t *testing.T) {
	tr := zipfTrace(t, 50, 5000, 0.8, 31)
	const cap = 10
	p := NewLRU(cap)
	var model []uint64 // front = MRU
	find := func(k uint64) int {
		for i, m := range model {
			if m == k {
				return i
			}
		}
		return -1
	}
	for i, r := range tr {
		hit := p.Request(r.ID, 1)
		idx := find(r.ID)
		wantHit := idx >= 0
		if hit != wantHit {
			t.Fatalf("request %d (key %d): hit=%v, model says %v", i, r.ID, hit, wantHit)
		}
		if idx >= 0 {
			model = append(model[:idx], model[idx+1:]...)
		}
		model = append([]uint64{r.ID}, model...)
		if len(model) > cap {
			model = model[:cap]
		}
	}
}

// TestFIFOModelCheck compares FIFO against a queue model.
func TestFIFOModelCheck(t *testing.T) {
	tr := zipfTrace(t, 50, 5000, 0.8, 37)
	const cap = 10
	p := NewFIFO(cap)
	var model []uint64 // front = oldest
	contains := func(k uint64) bool {
		for _, m := range model {
			if m == k {
				return true
			}
		}
		return false
	}
	for i, r := range tr {
		hit := p.Request(r.ID, 1)
		wantHit := contains(r.ID)
		if hit != wantHit {
			t.Fatalf("request %d (key %d): hit=%v, model says %v", i, r.ID, hit, wantHit)
		}
		if !wantHit {
			model = append(model, r.ID)
			if len(model) > cap {
				model = model[1:]
			}
		}
	}
}

// TestClockSecondChance: a referenced object survives one eviction pass.
func TestClockSecondChance(t *testing.T) {
	p := NewClock(3)
	p.Request(1, 1)
	p.Request(2, 1)
	p.Request(3, 1)
	p.Request(1, 1) // sets 1's reference bit
	p.Request(4, 1) // evicts 2 (oldest unreferenced); 1 is reinserted
	if !p.Contains(1) {
		t.Error("referenced object 1 should survive")
	}
	if p.Contains(2) {
		t.Error("unreferenced object 2 should be the victim")
	}
}

// TestSieveDoesNotMoveOnHit: the visited object is retained in place; the
// object inserted after it is evicted first once the hand passes.
func TestSieveDoesNotMoveOnHit(t *testing.T) {
	p := NewSieve(3)
	p.Request(1, 1)
	p.Request(2, 1)
	p.Request(3, 1)
	p.Request(2, 1) // visit 2
	p.Request(4, 1) // hand scans from tail: 1 unvisited -> evicted
	if p.Contains(1) {
		t.Error("object 1 should be evicted")
	}
	if !p.Contains(2) {
		t.Error("visited object 2 should survive")
	}
	p.Request(5, 1) // hand continues: 2's bit cleared earlier? no: 2 visited was cleared when? not yet passed. 3 unvisited -> evicted
	if !p.Contains(2) {
		t.Error("object 2 should still be resident")
	}
	if p.Contains(3) {
		t.Error("object 3 should be evicted before visited 2")
	}
}

// TestSLRUPromotion: one hit moves an object out of the probationary
// segment so a subsequent flood of new objects cannot displace it.
func TestSLRUPromotion(t *testing.T) {
	p := NewSLRU(8, 4)
	p.Request(1, 1)
	p.Request(1, 1) // promote to segment 1
	for i := uint64(100); i < 120; i++ {
		p.Request(i, 1)
	}
	if !p.Contains(1) {
		t.Error("promoted object displaced by probationary churn")
	}
}

// Test2QReadmission: an object evicted from A1in and re-requested through
// A1out lands in Am and survives subsequent one-hit churn.
func Test2QReadmission(t *testing.T) {
	p := New2Q(8) // A1in quota = 2
	p.Request(1, 1)
	// Push enough new objects through to evict 1 from A1in into A1out.
	for i := uint64(10); i < 20; i++ {
		p.Request(i, 1)
	}
	if p.Contains(1) {
		t.Fatal("object 1 should have been evicted from A1in")
	}
	p.Request(1, 1) // A1out hit -> admit into Am
	for i := uint64(30); i < 36; i++ {
		p.Request(i, 1)
	}
	if !p.Contains(1) {
		t.Error("object 1 should be protected in Am")
	}
}

// TestARCAdaptsP: ghost hits on B1 must grow the recency target.
func TestARCAdaptsP(t *testing.T) {
	p := NewARC(10)
	if p.P() != 0 {
		t.Fatalf("initial p = %d", p.P())
	}
	// Build a frequency set: fill T1, then re-reference to move into T2.
	for i := uint64(0); i < 10; i++ {
		p.Request(i, 1)
	}
	for i := uint64(0); i < 10; i++ {
		p.Request(i, 1)
	}
	// Churn new objects through T1: with T2 holding the hot set, T1
	// victims are recorded in the B1 ghost.
	for i := uint64(100); i < 110; i++ {
		p.Request(i, 1)
	}
	before := p.P()
	grew := false
	for i := uint64(100); i < 110; i++ {
		if !p.Contains(i) {
			p.Request(i, 1) // B1 ghost hit
			if p.P() > before {
				grew = true
			}
		}
	}
	if !grew {
		t.Errorf("p did not grow after B1 hits (still %d)", p.P())
	}
}

// TestBLRUSecondRequestMiss: B-LRU's defining behavior.
func TestBLRUSecondRequestMiss(t *testing.T) {
	p := NewBLRU(100)
	if p.Request(1, 1) {
		t.Error("first request should miss")
	}
	if p.Request(1, 1) {
		t.Error("second request should miss (admission on second sighting)")
	}
	if !p.Request(1, 1) {
		t.Error("third request should hit")
	}
}

// TestTinyLFURejectsColdCandidate: a one-hit wonder leaving the window
// must lose the duel against a frequently used probation victim.
func TestTinyLFURejectsColdCandidate(t *testing.T) {
	p := NewTinyLFU(100, 0.01) // window of 1 object
	// Build frequency for a working set that fills main.
	for round := 0; round < 5; round++ {
		for i := uint64(0); i < 99; i++ {
			p.Request(i, 1)
		}
	}
	if !p.Contains(5) {
		t.Fatal("hot object missing from main")
	}
	// Stream one-hit wonders; they should all be filtered at the window.
	for i := uint64(1000); i < 1200; i++ {
		p.Request(i, 1)
	}
	hot := 0
	for i := uint64(0); i < 99; i++ {
		if p.Contains(i) {
			hot++
		}
	}
	if hot < 90 {
		t.Errorf("only %d/99 hot objects survived one-hit-wonder churn", hot)
	}
}

// TestLRUKPrefersSingleAccessVictims: with K=2, objects never re-referenced
// are evicted before twice-referenced ones.
func TestLRUKPrefersSingleAccessVictims(t *testing.T) {
	p := NewLRUK(4, 2)
	p.Request(1, 1)
	p.Request(2, 1)
	p.Request(1, 1) // 1 now has 2 references
	p.Request(3, 1)
	p.Request(4, 1)
	p.Request(5, 1) // evicts one of {2,3,4} (K-distance infinite), never 1
	if !p.Contains(1) {
		t.Error("twice-referenced object 1 evicted before single-access objects")
	}
	if p.Contains(2) {
		t.Error("object 2 (oldest single-access) should be the victim")
	}
}

// TestLeCaRWeightsMove: ghost hits shift the expert weights away from 0.5.
func TestLeCaRWeightsMove(t *testing.T) {
	p := NewLeCaR(50)
	tr := workload.Generate(workload.Config{Objects: 500, Requests: 20000, Alpha: 0.7}, 41)
	replay(p, tr)
	if p.WeightLRU() == 0.5 {
		t.Error("LeCaR weights never updated")
	}
	if w := p.WeightLRU(); w <= 0 || w >= 1 {
		t.Errorf("weight out of range: %v", w)
	}
}

// TestLIRSScanResistance: after a large scan, the hot LIR set survives.
func TestLIRSScanResistance(t *testing.T) {
	p := NewLIRS(100)
	// Establish a hot LIR set with multiple rounds.
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < 90; i++ {
			p.Request(i, 1)
		}
	}
	// Scan 1000 one-time objects.
	for i := uint64(10000); i < 11000; i++ {
		p.Request(i, 1)
	}
	surviving := 0
	for i := uint64(0); i < 90; i++ {
		if p.Contains(i) {
			surviving++
		}
	}
	if surviving < 85 {
		t.Errorf("only %d/90 hot objects survived the scan", surviving)
	}
}

// TestLIRSPromotionOnQuickReuse: a block re-referenced while still in the
// stack becomes LIR even after eviction (non-resident HIR promotion).
func TestLIRSPromotionOnQuickReuse(t *testing.T) {
	p := NewLIRS(10)
	for i := uint64(0); i < 20; i++ {
		p.Request(i, 1)
	}
	// Object 19 was just inserted as HIR; re-request it to promote.
	if !p.Contains(19) {
		// may have been evicted from tiny HIR queue; re-insert
		p.Request(19, 1)
	}
	p.Request(19, 1)
	// Churn the HIR queue; 19 should persist as LIR.
	for i := uint64(100); i < 120; i++ {
		p.Request(i, 1)
	}
	if !p.Contains(19) {
		t.Error("promoted LIR block evicted by HIR churn")
	}
}

// TestFIFOMergeRetainsHotObjects: merge keeps frequently accessed objects.
func TestFIFOMergeRetainsHotObjects(t *testing.T) {
	p := NewFIFOMerge(64)
	// Insert a hot object and keep it hot.
	p.Request(1, 1)
	for i := uint64(10); i < 70; i++ {
		p.Request(i, 1)
		p.Request(1, 1)
	}
	if !p.Contains(1) {
		t.Error("hot object lost during merges")
	}
}

// TestBeladyPanicsBeyondTrace guards the offline cursor.
func TestBeladyPanicsBeyondTrace(t *testing.T) {
	tr := zipfTrace(t, 10, 20, 0.5, 43)
	b := NewBelady(5, tr)
	replay(b, tr)
	defer func() {
		if recover() == nil {
			t.Error("expected panic past end of trace")
		}
	}()
	b.Request(1, 1)
}

// TestBeladyBypassesDeadObjects: an object with no future use is never
// admitted.
func TestBeladyBypassesDeadObjects(t *testing.T) {
	tr := zipfTrace(t, 1000, 2000, 0.1, 47) // mostly one-hit wonders
	b := NewBelady(100, tr)
	for i, r := range tr {
		b.Request(r.ID, 1)
		_ = i
	}
	// Every resident object at the end must have had a future use when
	// admitted; weak check: residency never exceeded capacity and misses
	// equal at least unique count (since mostly singles).
	if b.Len() > 100 {
		t.Errorf("Len = %d > capacity", b.Len())
	}
}

// TestLHDEvictsIdleOverHot: with a strong hot set, LHD should keep it.
func TestLHDEvictsIdleOverHot(t *testing.T) {
	p := NewLHD(100)
	tr := workload.Generate(workload.Config{Objects: 1000, Requests: 60000, Alpha: 1.2}, 53)
	missesLHD := replay(p, tr)
	r, _ := New("random", 100)
	missesRandom := replay(r, tr)
	if missesLHD >= missesRandom {
		t.Errorf("LHD (%d misses) should beat random (%d) on skewed workload", missesLHD, missesRandom)
	}
}
