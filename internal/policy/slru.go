package policy

import "s3fifo/internal/list"

// SLRU is Segmented LRU (Karedla et al., §5.2 of the paper): n equal LRU
// segments; objects enter the lowest segment and climb one segment per
// hit; overflow demotes to the next lower segment, and eviction happens
// from the bottom segment's LRU end. The bottom segment performs quick
// demotion, but without a ghost queue SLRU is not scan-resistant.
type SLRU struct {
	base
	segments []*list.List // 0 = lowest (probationary)
	caps     []uint64
	sizes    []uint64
	index    map[uint64]*slruEntry
}

type slruEntry struct {
	node    *list.Node
	segment int
}

// NewSLRU returns an n-segment SLRU.
func NewSLRU(capacity uint64, n int) *SLRU {
	if n < 1 {
		n = 1
	}
	s := &SLRU{
		base:  base{name: "slru", capacity: capacity},
		index: make(map[uint64]*slruEntry),
	}
	for i := 0; i < n; i++ {
		s.segments = append(s.segments, list.New())
		c := capacity / uint64(n)
		if i == 0 {
			c += capacity % uint64(n)
		}
		s.caps = append(s.caps, c)
	}
	s.sizes = make([]uint64, n)
	return s
}

// Request implements Policy.
func (s *SLRU) Request(key uint64, size uint32) bool {
	s.clock++
	if e, ok := s.index[key]; ok {
		e.node.Freq++
		s.promote(e)
		return true
	}
	if uint64(size) > s.capacity {
		return false
	}
	n := &list.Node{Key: key, Size: size, Aux: int64(s.clock)}
	s.index[key] = &slruEntry{node: n, segment: 0}
	s.used += uint64(size)
	s.place(0, n)
	return false
}

// promote moves a hit object one segment up (or to the MRU of the top
// segment).
func (s *SLRU) promote(e *slruEntry) {
	target := e.segment + 1
	if target >= len(s.segments) {
		s.segments[e.segment].MoveToFront(e.node)
		return
	}
	s.segments[e.segment].Remove(e.node)
	s.sizes[e.segment] -= uint64(e.node.Size)
	e.segment = target
	s.place(target, e.node)
}

// place inserts n at the MRU end of segment, demoting overflow downward
// and evicting from segment 0.
func (s *SLRU) place(segment int, n *list.Node) {
	s.segments[segment].PushFront(n)
	s.sizes[segment] += uint64(n.Size)
	for seg := segment; seg >= 0; seg-- {
		for s.sizes[seg] > s.caps[seg] {
			victim := s.segments[seg].PopBack()
			if victim == nil {
				break
			}
			s.sizes[seg] -= uint64(victim.Size)
			if seg == 0 {
				delete(s.index, victim.Key)
				s.used -= uint64(victim.Size)
				s.notify(victim.Key, victim.Size, int(victim.Freq), uint64(victim.Aux))
				continue
			}
			e := s.index[victim.Key]
			e.segment = seg - 1
			s.segments[seg-1].PushFront(victim)
			s.sizes[seg-1] += uint64(victim.Size)
		}
	}
}

// Contains implements Policy.
func (s *SLRU) Contains(key uint64) bool {
	_, ok := s.index[key]
	return ok
}

// Delete implements Policy.
func (s *SLRU) Delete(key uint64) {
	e, ok := s.index[key]
	if !ok {
		return
	}
	s.segments[e.segment].Remove(e.node)
	s.sizes[e.segment] -= uint64(e.node.Size)
	s.used -= uint64(e.node.Size)
	delete(s.index, key)
}

// Len returns the number of cached objects.
func (s *SLRU) Len() int { return len(s.index) }
