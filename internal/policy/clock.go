package policy

import "s3fifo/internal/list"

// Clock implements FIFO-Reinsertion, equivalently Second Chance or CLOCK
// (§3, footnote 1): objects carry a reference bit set on hit; eviction
// scans from the FIFO tail, reinserting referenced objects with the bit
// cleared and evicting the first unreferenced one.
type Clock struct {
	base
	queue *list.List
	index map[uint64]*list.Node
}

// NewClock returns a CLOCK/FIFO-Reinsertion cache.
func NewClock(capacity uint64) *Clock {
	return &Clock{
		base:  base{name: "clock", capacity: capacity},
		queue: list.New(),
		index: make(map[uint64]*list.Node),
	}
}

// Request implements Policy.
func (c *Clock) Request(key uint64, size uint32) bool {
	c.clock++
	if n, ok := c.index[key]; ok {
		n.Freq++
		n.Aux |= clockRefBit
		return true
	}
	if uint64(size) > c.capacity {
		return false
	}
	for c.used+uint64(size) > c.capacity {
		c.evict()
	}
	n := &list.Node{Key: key, Size: size, Aux: int64(c.clock) << 1}
	c.queue.PushFront(n)
	c.index[key] = n
	c.used += uint64(size)
	return false
}

// clockRefBit is the low bit of Aux; the upper bits store insertion time.
const clockRefBit = 1

func (c *Clock) evict() {
	for {
		n := c.queue.Back()
		if n == nil {
			return
		}
		if n.Aux&clockRefBit != 0 {
			n.Aux &^= clockRefBit
			c.queue.MoveToFront(n)
			continue
		}
		c.queue.Remove(n)
		delete(c.index, n.Key)
		c.used -= uint64(n.Size)
		c.notify(n.Key, n.Size, int(n.Freq), uint64(n.Aux>>1))
		return
	}
}

// Contains implements Policy.
func (c *Clock) Contains(key uint64) bool {
	_, ok := c.index[key]
	return ok
}

// Delete implements Policy.
func (c *Clock) Delete(key uint64) {
	if n, ok := c.index[key]; ok {
		c.queue.Remove(n)
		delete(c.index, key)
		c.used -= uint64(n.Size)
	}
}

// Len returns the number of cached objects.
func (c *Clock) Len() int { return c.queue.Len() }
