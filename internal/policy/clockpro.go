package policy

import "s3fifo/internal/list"

// ClockPro implements CLOCK-Pro (Jiang, Chen & Zhang, ATC'05, cited as
// [74]), the CLOCK-based approximation of LIRS. All pages — hot, resident
// cold, and non-resident cold pages in their test period — sit on one
// clock ring in insertion order. The eviction hand sweeps from the oldest
// position:
//
//   - a referenced resident cold page is promoted to hot if still in its
//     test period (its reuse distance is provably short), or granted a
//     fresh test period otherwise;
//   - an unreferenced resident cold page is evicted, leaving a
//     non-resident test entry if its test period is still running;
//   - a hot page over the hot budget is demoted to cold; otherwise it
//     gets the usual CLOCK second chance;
//   - a test entry reaching the oldest position has survived one full
//     rotation: its test period expires and the cold target shrinks.
//
// A miss on a page still in its test period grows the cold target — the
// adaptation mirroring LIRS's stack promotion.
type ClockPro struct {
	base
	ring  *list.List // clock order: front = most recently (re)inserted
	index map[uint64]*cpEntry

	coldTarget uint64 // byte budget for resident cold pages (adaptive)
	hotBytes   uint64
	coldBytes  uint64 // resident cold bytes
	testCount  int    // non-resident test entries
}

type cpStatus uint8

const (
	cpHot cpStatus = iota
	cpColdResident
	cpColdTest // non-resident, in test period
)

type cpEntry struct {
	key       uint64
	size      uint32
	status    cpStatus
	ref       bool
	inTest    bool   // resident cold only: test period still running
	testStart uint64 // clock when the non-resident test period began
	node      *list.Node
	freq      int
	inserted  uint64
}

// NewClockPro returns a CLOCK-Pro cache. The cold target starts at a
// LIRS-like small allocation (10% of capacity) and adapts from
// test-period outcomes in both directions.
func NewClockPro(capacity uint64) *ClockPro {
	coldTarget := capacity / 10
	if coldTarget < 1 {
		coldTarget = 1
	}
	return &ClockPro{
		base:       base{name: "clock-pro", capacity: capacity},
		ring:       list.New(),
		index:      make(map[uint64]*cpEntry),
		coldTarget: coldTarget,
	}
}

// Request implements Policy.
func (c *ClockPro) Request(key uint64, size uint32) bool {
	c.clock++
	if e, ok := c.index[key]; ok && e.status != cpColdTest {
		e.ref = true
		e.freq++
		return true
	}
	if uint64(size) > c.capacity {
		return false
	}
	hot := false
	if e, ok := c.index[key]; ok {
		// Re-accessed during its test period: cold space was too small,
		// and the page has proven a short reuse distance — insert as hot.
		hot = true
		c.growCold(uint64(e.size))
		c.removeEntry(e)
	}
	for c.used+uint64(size) > c.capacity {
		c.evictOne()
	}
	ne := &cpEntry{key: key, size: size, inserted: c.clock, node: &list.Node{Key: key, Size: size}}
	if hot {
		ne.status = cpHot
		c.hotBytes += uint64(size)
	} else {
		ne.status = cpColdResident
		ne.inTest = true
		c.coldBytes += uint64(size)
	}
	c.ring.PushFront(ne.node)
	c.index[key] = ne
	c.used += uint64(size)
	return false
}

func (c *ClockPro) growCold(delta uint64) {
	c.coldTarget += delta
	if c.coldTarget > c.capacity {
		c.coldTarget = c.capacity
	}
}

func (c *ClockPro) shrinkCold(delta uint64) {
	if c.coldTarget > delta {
		c.coldTarget -= delta
	} else {
		c.coldTarget = 1
	}
}

func (c *ClockPro) hotTarget() uint64 {
	if c.capacity > c.coldTarget {
		return c.capacity - c.coldTarget
	}
	return 0
}

// evictOne removes exactly one resident page. The sweep is bounded: every
// rotation step either removes an entry, clears a reference bit, changes
// a page's status, or rotates a stable page toward the front — and a
// resident page always exists, so the guard never fires in practice.
func (c *ClockPro) evictOne() {
	guard := 4*c.ring.Len() + 8
	for ; guard > 0; guard-- {
		n := c.ring.Back()
		if n == nil {
			return
		}
		e := c.index[n.Key]
		switch e.status {
		case cpColdTest:
			// A test period lasts roughly one cache's worth of requests
			// (the LIRS-style reuse-distance test); expire it only then.
			if c.clock-e.testStart > c.capacity {
				c.shrinkCold(uint64(e.size))
				c.removeEntry(e)
			} else {
				c.ring.MoveToFront(n)
			}

		case cpColdResident:
			if e.ref {
				e.ref = false
				if e.inTest {
					// Reused within its test period: promote to hot.
					e.status = cpHot
					c.coldBytes -= uint64(e.size)
					c.hotBytes += uint64(e.size)
				} else {
					e.inTest = true // start a fresh test period
				}
				c.ring.MoveToFront(n)
				continue
			}
			// The victim. Keep a non-resident test entry if still testing.
			c.coldBytes -= uint64(e.size)
			c.used -= uint64(e.size)
			c.notify(e.key, e.size, e.freq, e.inserted)
			if e.inTest {
				e.status = cpColdTest
				e.testStart = c.clock
				c.testCount++
				c.ring.MoveToFront(n)
				c.boundTests()
			} else {
				c.removeEntry(e)
			}
			return

		case cpHot:
			if e.ref {
				e.ref = false
				c.ring.MoveToFront(n)
				continue
			}
			if c.hotBytes > c.hotTarget() {
				// Demote: the hot set is over budget.
				e.status = cpColdResident
				e.inTest = true
				c.hotBytes -= uint64(e.size)
				c.coldBytes += uint64(e.size)
			}
			c.ring.MoveToFront(n)
		}
	}
	// Guard fired (degenerate configuration): drop the oldest resident.
	for n := c.ring.Back(); n != nil; n = n.Prev() {
		e := c.index[n.Key]
		if e.status == cpColdTest {
			continue
		}
		if e.status == cpHot {
			c.hotBytes -= uint64(e.size)
		} else {
			c.coldBytes -= uint64(e.size)
		}
		c.used -= uint64(e.size)
		c.notify(e.key, e.size, e.freq, e.inserted)
		c.removeEntry(e)
		return
	}
}

// boundTests caps non-resident test entries at the resident population,
// expiring the oldest ones beyond the cap.
func (c *ClockPro) boundTests() {
	residents := len(c.index) - c.testCount
	limit := residents + 64
	if c.testCount <= limit {
		return
	}
	for n := c.ring.Back(); n != nil && c.testCount > limit; {
		prev := n.Prev()
		e := c.index[n.Key]
		if e.status == cpColdTest {
			c.shrinkCold(uint64(e.size))
			c.removeEntry(e)
		}
		n = prev
	}
}

// removeEntry unlinks e entirely.
func (c *ClockPro) removeEntry(e *cpEntry) {
	if e.node.InList() {
		c.ring.Remove(e.node)
	}
	if e.status == cpColdTest {
		c.testCount--
	}
	delete(c.index, e.key)
}

// Contains implements Policy.
func (c *ClockPro) Contains(key uint64) bool {
	e, ok := c.index[key]
	return ok && e.status != cpColdTest
}

// Delete implements Policy.
func (c *ClockPro) Delete(key uint64) {
	e, ok := c.index[key]
	if !ok || e.status == cpColdTest {
		return
	}
	if e.status == cpHot {
		c.hotBytes -= uint64(e.size)
	} else {
		c.coldBytes -= uint64(e.size)
	}
	c.used -= uint64(e.size)
	c.removeEntry(e)
}

// Len returns the number of resident objects.
func (c *ClockPro) Len() int { return len(c.index) - c.testCount }
