package policy

import (
	"container/heap"
	"math"
)

// LRFU implements Lee et al.'s Least Recently/Frequently Used policy
// (TC'01, cited as [51]): each object carries a Combined Recency and
// Frequency (CRF) value C(t) = Σ_i (1/2)^(λ·(t-t_i)) over its access
// times, subsuming LRU (λ→∞) and LFU (λ→0). The victim is the object
// with the lowest CRF.
//
// Because every CRF decays by the same factor between accesses, the
// relative order of two objects only changes when one of them is
// accessed; we therefore heap on rank = log2(CRF at last access) + λ·t_last,
// which is constant between accesses, with lazy invalidation on update.
type LRFU struct {
	base
	lambda  float64
	entries map[uint64]*lrfuEntry
	pq      lrfuHeap
}

type lrfuEntry struct {
	key      uint64
	size     uint32
	crf      float64 // CRF at lastTime
	lastTime uint64
	freq     int
	inserted uint64
	version  uint64
}

type lrfuHeapItem struct {
	key     uint64
	rank    float64
	version uint64
}

type lrfuHeap []lrfuHeapItem

func (h lrfuHeap) Len() int           { return len(h) }
func (h lrfuHeap) Less(i, j int) bool { return h[i].rank < h[j].rank }
func (h lrfuHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *lrfuHeap) Push(x any)        { *h = append(*h, x.(lrfuHeapItem)) }
func (h *lrfuHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// NewLRFU returns an LRFU cache. lambda in (0,1] balances recency (high)
// against frequency (low); the original paper finds values around 1e-4
// to 1e-3 work well, which is the default here (λ=0.0005).
func NewLRFU(capacity uint64, lambda float64) *LRFU {
	if lambda <= 0 {
		lambda = 0.0005
	}
	return &LRFU{
		base:    base{name: "lrfu", capacity: capacity},
		lambda:  lambda,
		entries: make(map[uint64]*lrfuEntry),
	}
}

// touch folds an access at the current clock into e's CRF.
func (l *LRFU) touch(e *lrfuEntry) {
	dt := float64(l.clock - e.lastTime)
	e.crf = 1 + e.crf*math.Exp2(-l.lambda*dt)
	e.lastTime = l.clock
	e.version++
	heap.Push(&l.pq, lrfuHeapItem{key: e.key, rank: l.rank(e), version: e.version})
}

// rank is a time-invariant ordering key for the CRF (see type comment).
func (l *LRFU) rank(e *lrfuEntry) float64 {
	return math.Log2(e.crf) + l.lambda*float64(e.lastTime)
}

// Request implements Policy.
func (l *LRFU) Request(key uint64, size uint32) bool {
	l.clock++
	if e, ok := l.entries[key]; ok {
		e.freq++
		l.touch(e)
		return true
	}
	if uint64(size) > l.capacity {
		return false
	}
	for l.used+uint64(size) > l.capacity {
		l.evict()
	}
	e := &lrfuEntry{key: key, size: size, lastTime: l.clock, inserted: l.clock}
	l.entries[key] = e
	l.used += uint64(size)
	l.touch(e)
	return false
}

func (l *LRFU) evict() {
	for l.pq.Len() > 0 {
		item := heap.Pop(&l.pq).(lrfuHeapItem)
		e, ok := l.entries[item.key]
		if !ok || e.version != item.version {
			continue
		}
		delete(l.entries, e.key)
		l.used -= uint64(e.size)
		l.notify(e.key, e.size, e.freq, e.inserted)
		return
	}
}

// Contains implements Policy.
func (l *LRFU) Contains(key uint64) bool {
	_, ok := l.entries[key]
	return ok
}

// Delete implements Policy.
func (l *LRFU) Delete(key uint64) {
	if e, ok := l.entries[key]; ok {
		delete(l.entries, key)
		l.used -= uint64(e.size)
	}
}

// Len returns the number of cached objects.
func (l *LRFU) Len() int { return len(l.entries) }
