package policy

import "s3fifo/internal/sketch"

// BLRU is Bloom-filter LRU (§5.2 "Common algorithms"): an LRU cache whose
// admission is gated by a Bloom filter — an object is only admitted on its
// second appearance. This rejects all one-hit wonders at the cost of
// making every object's second request a miss, which is why the paper
// finds it worse than plain LRU on most workloads.
type BLRU struct {
	base
	lru    *LRU
	seen   *sketch.Bloom
	window int
}

// NewBLRU returns a Bloom-filter-admission LRU.
func NewBLRU(capacity uint64) *BLRU {
	window := int(capacity)
	if window > 1<<22 {
		window = 1 << 22
	}
	if window < 16 {
		window = 16
	}
	b := &BLRU{
		base:   base{name: "b-lru", capacity: capacity},
		lru:    NewLRU(capacity),
		seen:   sketch.NewBloom(window, 0.01),
		window: window,
	}
	return b
}

// Request implements Policy.
func (b *BLRU) Request(key uint64, size uint32) bool {
	b.clock++
	b.lru.clock = b.clock
	if b.lru.Contains(key) {
		return b.lru.Request(key, size)
	}
	if !b.seen.Contains(key) {
		// First sighting: remember it, do not admit.
		if b.seen.Count() >= b.window {
			b.seen.Clear()
		}
		b.seen.Add(key)
		return false
	}
	b.lru.Request(key, size)
	return false
}

// Contains implements Policy.
func (b *BLRU) Contains(key uint64) bool { return b.lru.Contains(key) }

// Delete implements Policy.
func (b *BLRU) Delete(key uint64) { b.lru.Delete(key) }

// Used implements Policy.
func (b *BLRU) Used() uint64 { return b.lru.Used() }

// SetObserver implements Policy, forwarding to the inner LRU where
// evictions actually happen.
func (b *BLRU) SetObserver(o Observer) { b.lru.SetObserver(o) }

// Len returns the number of cached objects.
func (b *BLRU) Len() int { return b.lru.Len() }
