package policy

import "s3fifo/internal/list"

// ghostList is an exact ghost queue used by the LRU-based baselines (2Q,
// ARC, LeCaR): it remembers recently evicted object IDs (no data) up to a
// byte budget, evicting the oldest entries first. Unlike the fingerprint
// table in internal/ghost it is exact, which matches how these algorithms
// are specified in their original papers.
type ghostList struct {
	queue *list.List
	index map[uint64]*list.Node
	cap   uint64 // byte budget
	used  uint64
}

func newGhostList(capBytes uint64) *ghostList {
	return &ghostList{
		queue: list.New(),
		index: make(map[uint64]*list.Node),
		cap:   capBytes,
	}
}

// push records key; duplicate pushes refresh recency.
func (g *ghostList) push(key uint64, size uint32) {
	if n, ok := g.index[key]; ok {
		g.queue.MoveToFront(n)
		return
	}
	n := &list.Node{Key: key, Size: size}
	g.queue.PushFront(n)
	g.index[key] = n
	g.used += uint64(size)
	g.trim(g.cap)
}

// contains reports membership without side effects.
func (g *ghostList) contains(key uint64) bool {
	_, ok := g.index[key]
	return ok
}

// remove drops key if present.
func (g *ghostList) remove(key uint64) {
	if n, ok := g.index[key]; ok {
		g.queue.Remove(n)
		delete(g.index, key)
		g.used -= uint64(n.Size)
	}
}

// popLRU removes and returns the oldest entry's key (ok=false when empty).
func (g *ghostList) popLRU() (uint64, bool) {
	n := g.queue.PopBack()
	if n == nil {
		return 0, false
	}
	delete(g.index, n.Key)
	g.used -= uint64(n.Size)
	return n.Key, true
}

// trim evicts oldest entries until used <= budget.
func (g *ghostList) trim(budget uint64) {
	for g.used > budget {
		if _, ok := g.popLRU(); !ok {
			return
		}
	}
}

func (g *ghostList) len() int      { return g.queue.Len() }
func (g *ghostList) bytes() uint64 { return g.used }
