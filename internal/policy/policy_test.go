package policy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"s3fifo/internal/trace"
	"s3fifo/internal/workload"
)

// replay runs a trace through p and returns the number of misses.
func replay(p Policy, tr trace.Trace) int {
	misses := 0
	for _, r := range tr {
		switch r.Op {
		case trace.OpDelete:
			p.Delete(r.ID)
		default:
			if !p.Request(r.ID, r.Size) {
				misses++
			}
		}
	}
	return misses
}

func zipfTrace(t testing.TB, objects, requests int, alpha float64, seed int64) trace.Trace {
	t.Helper()
	return workload.Generate(workload.Config{Objects: objects, Requests: requests, Alpha: alpha}, seed)
}

// TestRegistry checks that every registered name constructs a policy whose
// Name matches sensibly and Capacity is wired through.
func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name, 100)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Capacity() != 100 {
			t.Errorf("%s: Capacity = %d, want 100", name, p.Capacity())
		}
		if p.Name() == "" {
			t.Errorf("%s: empty Name", name)
		}
	}
	if _, err := New("no-such-policy", 10); err == nil {
		t.Error("unknown policy should error")
	}
	if len(Names()) < 15 {
		t.Errorf("only %d policies registered", len(Names()))
	}
}

// allPolicies returns one instance of every online policy at capacity c.
func allPolicies(t testing.TB, c uint64) []Policy {
	t.Helper()
	var ps []Policy
	for _, name := range Names() {
		if name == "fifo-reinsertion" {
			continue // alias of clock
		}
		p, err := New(name, c)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	return ps
}

// TestCapacityNeverExceeded is the core safety invariant: across a mixed
// workload with deletes and varied sizes, Used() never exceeds Capacity().
func TestCapacityNeverExceeded(t *testing.T) {
	tr := workload.Generate(workload.Config{
		Objects: 2000, Requests: 30000, Alpha: 0.9,
		ScanFraction: 0.05, DeleteFraction: 0.02, MeanSize: 64, SizeSigma: 1.0,
	}, 11)
	for _, p := range allPolicies(t, 4096) {
		for i, r := range tr {
			if r.Op == trace.OpDelete {
				p.Delete(r.ID)
			} else {
				p.Request(r.ID, r.Size)
			}
			if p.Used() > p.Capacity() {
				t.Fatalf("%s: Used %d > Capacity %d at request %d", p.Name(), p.Used(), p.Capacity(), i)
			}
		}
	}
}

// TestOversizedObjectBypassed: objects larger than the cache must not be
// admitted or corrupt accounting.
func TestOversizedObjectBypassed(t *testing.T) {
	for _, p := range allPolicies(t, 100) {
		if p.Request(1, 1000) {
			t.Errorf("%s: oversized request reported hit", p.Name())
		}
		if p.Contains(1) {
			t.Errorf("%s: oversized object admitted", p.Name())
		}
		if p.Used() != 0 {
			t.Errorf("%s: Used = %d after bypass", p.Name(), p.Used())
		}
	}
}

// TestHitsWhenEverythingFits: when the cache is larger than the footprint,
// every repeat request must hit (B-LRU excepted: its Bloom admission makes
// each object's first TWO requests miss by design).
func TestHitsWhenEverythingFits(t *testing.T) {
	tr := zipfTrace(t, 500, 20000, 0.8, 3)
	for _, p := range allPolicies(t, 1000) {
		seen := map[uint64]int{}
		for i, r := range tr {
			hit := p.Request(r.ID, 1)
			mustHit := seen[r.ID] >= 1
			if p.Name() == "b-lru" {
				mustHit = seen[r.ID] >= 2
			}
			if mustHit && !hit {
				t.Fatalf("%s: request %d for object %d should hit (seen %d times)", p.Name(), i, r.ID, seen[r.ID])
			}
			if seen[r.ID] == 0 && hit {
				t.Fatalf("%s: first request for %d reported hit", p.Name(), r.ID)
			}
			seen[r.ID]++
		}
	}
}

// TestContainsMatchesRequestHit: Contains must agree with what the next
// Request would report, and must be side-effect free.
func TestContainsMatchesRequestHit(t *testing.T) {
	tr := zipfTrace(t, 300, 10000, 1.0, 5)
	for _, p := range allPolicies(t, 100) {
		for i, r := range tr {
			c := p.Contains(r.ID)
			hit := p.Request(r.ID, 1)
			if c != hit {
				t.Fatalf("%s: request %d: Contains=%v but Request hit=%v", p.Name(), i, c, hit)
			}
		}
	}
}

// TestDeleteRemoves: after Delete, Contains is false and re-request misses.
func TestDeleteRemoves(t *testing.T) {
	for _, p := range allPolicies(t, 100) {
		p.Request(1, 1)
		p.Request(2, 1)
		p.Delete(1)
		if p.Contains(1) {
			t.Errorf("%s: Contains(1) after Delete", p.Name())
		}
		if p.Request(1, 1) {
			t.Errorf("%s: Request(1) hit after Delete", p.Name())
		}
		p.Delete(999) // absent: must not panic or corrupt state
		if p.Used() > p.Capacity() {
			t.Errorf("%s: accounting corrupt after deletes", p.Name())
		}
	}
}

// TestDeterministic: two identical replays produce identical miss counts.
func TestDeterministic(t *testing.T) {
	tr := workload.Generate(workload.Config{
		Objects: 1000, Requests: 20000, Alpha: 0.9, ScanFraction: 0.05,
	}, 21)
	for _, name := range Names() {
		p1, _ := New(name, 200)
		p2, _ := New(name, 200)
		if m1, m2 := replay(p1, tr), replay(p2, tr); m1 != m2 {
			t.Errorf("%s: replays diverge: %d vs %d misses", name, m1, m2)
		}
	}
}

// TestObserverConsistency: every eviction reports a key that was resident
// with its correct size, and after eviction the key is gone.
func TestObserverConsistency(t *testing.T) {
	tr := zipfTrace(t, 2000, 20000, 0.8, 9)
	for _, p := range allPolicies(t, 100) {
		resident := map[uint64]uint32{}
		pp := p
		p.SetObserver(func(ev Eviction) {
			size, ok := resident[ev.Key]
			if !ok {
				t.Fatalf("%s: evicted non-resident key %d", pp.Name(), ev.Key)
			}
			if size != ev.Size {
				t.Fatalf("%s: evicted key %d size %d, inserted with %d", pp.Name(), ev.Key, ev.Size, size)
			}
			if ev.EvictedAt < ev.InsertedAt {
				t.Fatalf("%s: eviction time %d before insertion %d", pp.Name(), ev.EvictedAt, ev.InsertedAt)
			}
			delete(resident, ev.Key)
		})
		for _, r := range tr {
			had := p.Contains(r.ID)
			p.Request(r.ID, 1)
			if !had && p.Contains(r.ID) {
				resident[r.ID] = 1
			}
		}
	}
}

// TestBeladyIsLowerBound: no online policy beats Belady on unit-size
// workloads.
func TestBeladyIsLowerBound(t *testing.T) {
	tr := zipfTrace(t, 2000, 40000, 1.0, 13)
	cap := uint64(200)
	belady := NewBelady(cap, tr)
	beladyMisses := replay(belady, tr)
	for _, p := range allPolicies(t, cap) {
		m := replay(p, tr)
		if m < beladyMisses {
			t.Errorf("%s: %d misses < Belady's %d", p.Name(), m, beladyMisses)
		}
	}
}

// TestSkewedWorkloadBeatsRandom: on a skewed trace, structured policies
// should not be dramatically worse than random eviction. (Loose sanity
// bound; B-LRU pays a known double-miss penalty so it gets slack too.)
func TestSkewedWorkloadBeatsRandom(t *testing.T) {
	tr := zipfTrace(t, 5000, 60000, 1.1, 17)
	cap := uint64(500)
	rnd, _ := New("random", cap)
	randomMisses := replay(rnd, tr)
	for _, p := range allPolicies(t, cap) {
		m := replay(p, tr)
		if float64(m) > 1.35*float64(randomMisses) {
			t.Errorf("%s: %d misses vs random's %d", p.Name(), m, randomMisses)
		}
	}
}

// TestQuickAccountingIntegrity drives random ops through every policy and
// checks Used() equals the sum of sizes of objects it claims to contain.
func TestQuickAccountingIntegrity(t *testing.T) {
	names := Names()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		name := names[rng.Intn(len(names))]
		p, err := New(name, 64)
		if err != nil {
			return false
		}
		keys := map[uint64]uint32{}
		for i := 0; i < 500; i++ {
			key := uint64(rng.Intn(40))
			switch rng.Intn(10) {
			case 0:
				p.Delete(key)
				delete(keys, key)
			default:
				size := uint32(rng.Intn(8) + 1)
				if prev, ok := keys[key]; ok {
					size = prev // stable sizes like real objects
				}
				p.Request(key, size)
				if p.Contains(key) {
					keys[key] = size
				}
			}
			if p.Used() > p.Capacity() {
				return false
			}
		}
		// Every contained key we know of contributes to Used; Used can't be
		// less than the max single contained object either. Full equality
		// needs the policy's own view, so we just re-verify Contains is
		// self-consistent with hits.
		for k := range keys {
			if p.Contains(k) != p.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickDemotionPoliciesBeatLRUOnScans: ARC, LIRS, 2Q and TinyLFU were
// designed for scan resistance — on a scan-heavy trace they must beat LRU.
func TestQuickDemotionPoliciesBeatLRUOnScans(t *testing.T) {
	tr := workload.Generate(workload.Config{
		Objects: 1000, Requests: 100000, Alpha: 0.9, ScanFraction: 0.30, ScanLength: 400,
	}, 23)
	cap := uint64(400)
	lru, _ := New("lru", cap)
	lruMisses := replay(lru, tr)
	for _, name := range []string{"arc", "lirs", "2q"} {
		p, _ := New(name, cap)
		if m := replay(p, tr); m >= lruMisses {
			t.Errorf("%s: %d misses >= LRU's %d on scan-heavy trace", name, m, lruMisses)
		}
	}
}

func BenchmarkPolicies(b *testing.B) {
	tr := zipfTrace(b, 100_000, 1_000_000, 1.0, 1)
	for _, name := range []string{"fifo", "lru", "clock", "arc", "lirs", "tinylfu", "2q", "lecar", "lhd", "sieve"} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p, _ := New(name, 10_000)
				replay(p, tr)
			}
			b.SetBytes(int64(len(tr)))
		})
	}
}
