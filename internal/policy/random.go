package policy

import "s3fifo/internal/sketch"

// Random evicts a pseudo-random resident object. It exists as a sanity
// baseline: any algorithm exploiting workload structure should beat it on
// skewed traces.
type Random struct {
	base
	keys  []uint64
	pos   map[uint64]int
	sizes map[uint64]uint32
	freq  map[uint64]int
	ins   map[uint64]uint64
	state uint64
}

// NewRandom returns a random-eviction cache.
func NewRandom(capacity uint64) *Random {
	return &Random{
		base:  base{name: "random", capacity: capacity},
		pos:   make(map[uint64]int),
		sizes: make(map[uint64]uint32),
		freq:  make(map[uint64]int),
		ins:   make(map[uint64]uint64),
		state: 0x9E3779B97F4A7C15,
	}
}

func (r *Random) next() uint64 {
	r.state = sketch.Hash(r.state, 0xABCD)
	return r.state
}

// Request implements Policy.
func (r *Random) Request(key uint64, size uint32) bool {
	r.clock++
	if _, ok := r.pos[key]; ok {
		r.freq[key]++
		return true
	}
	if uint64(size) > r.capacity {
		return false
	}
	for r.used+uint64(size) > r.capacity {
		r.evict()
	}
	r.pos[key] = len(r.keys)
	r.keys = append(r.keys, key)
	r.sizes[key] = size
	r.freq[key] = 0
	r.ins[key] = r.clock
	r.used += uint64(size)
	return false
}

func (r *Random) evict() {
	if len(r.keys) == 0 {
		return
	}
	idx := int(r.next() % uint64(len(r.keys)))
	key := r.keys[idx]
	size, freq, ins := r.sizes[key], r.freq[key], r.ins[key]
	r.remove(key)
	r.notify(key, size, freq, ins)
}

func (r *Random) remove(key uint64) {
	idx, ok := r.pos[key]
	if !ok {
		return
	}
	last := len(r.keys) - 1
	r.keys[idx] = r.keys[last]
	r.pos[r.keys[idx]] = idx
	r.keys = r.keys[:last]
	r.used -= uint64(r.sizes[key])
	delete(r.pos, key)
	delete(r.sizes, key)
	delete(r.freq, key)
	delete(r.ins, key)
}

// Contains implements Policy.
func (r *Random) Contains(key uint64) bool {
	_, ok := r.pos[key]
	return ok
}

// Delete implements Policy.
func (r *Random) Delete(key uint64) { r.remove(key) }

// Len returns the number of cached objects.
func (r *Random) Len() int { return len(r.keys) }
