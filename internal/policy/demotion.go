package policy

// Demotion describes an object leaving a policy's probationary region (the
// small FIFO queue in S3-FIFO, the admission window in TinyLFU, T1 in
// ARC). §6.1 of the paper measures quick-demotion speed (how long objects
// stay in the probationary region) and precision (whether demoted objects
// were good eviction candidates) from these events.
type Demotion struct {
	Key uint64
	// Entered and Left are logical times (requests processed by the
	// policy) when the object entered and left the probationary region.
	Entered, Left uint64
	// ToMain is true when the object was promoted into the main region
	// rather than demoted out of the cache.
	ToMain bool
}

// DemotionObserver receives demotion events.
type DemotionObserver func(Demotion)

// DemotionTracker is implemented by policies with an identifiable
// probationary region.
type DemotionTracker interface {
	SetDemotionObserver(DemotionObserver)
}
