package policy

import "s3fifo/internal/list"

// MQ implements the Multi-Queue replacement algorithm (Zhou, Philbin &
// Li, ATC'01, cited as [169]), designed for second-level buffer caches:
// m LRU queues Q0..Qm-1 hold blocks by frequency class ⌊log2(f)⌋; a block
// unreferenced for lifeTime requests is demoted a level, and eviction
// takes the LRU block of the lowest non-empty queue. A ghost queue Qout
// remembers evicted blocks' frequencies so returning blocks resume their
// class.
type MQ struct {
	base
	queues   []*list.List
	entries  map[uint64]*mqEntry
	qout     *ghostList
	outFreq  map[uint64]int32
	lifeTime uint64
}

type mqEntry struct {
	node   *list.Node
	level  int
	expire uint64
}

const mqLevels = 8

// NewMQ returns a Multi-Queue cache. The lifeTime parameter is set to 2x
// the capacity in requests, a common heuristic for the peak temporal
// distance the original paper derives from traces.
func NewMQ(capacity uint64) *MQ {
	m := &MQ{
		base:     base{name: "mq", capacity: capacity},
		entries:  make(map[uint64]*mqEntry),
		qout:     newGhostList(capacity),
		outFreq:  make(map[uint64]int32),
		lifeTime: 2*capacity + 16,
	}
	for i := 0; i < mqLevels; i++ {
		m.queues = append(m.queues, list.New())
	}
	return m
}

// level maps a frequency to its queue index.
func mqLevel(freq int32) int {
	lvl := 0
	for f := freq; f > 1 && lvl < mqLevels-1; f >>= 1 {
		lvl++
	}
	return lvl
}

// Request implements Policy.
func (m *MQ) Request(key uint64, size uint32) bool {
	m.clock++
	m.adjust()
	if e, ok := m.entries[key]; ok {
		e.node.Freq++
		m.place(e)
		return true
	}
	if uint64(size) > m.capacity {
		return false
	}
	for m.used+uint64(size) > m.capacity {
		m.evict()
	}
	freq := int32(1)
	if m.qout.contains(key) {
		// Remembered block: resume its frequency class (+1 for this access).
		freq = m.outFreq[key] + 1
		m.qout.remove(key)
		delete(m.outFreq, key)
	}
	n := &list.Node{Key: key, Size: size, Freq: freq, Aux: int64(m.clock)}
	e := &mqEntry{node: n, level: -1}
	m.entries[key] = e
	m.used += uint64(size)
	m.place(e)
	return false
}

// place moves e to the MRU end of its frequency-class queue and refreshes
// its expiry.
func (m *MQ) place(e *mqEntry) {
	lvl := mqLevel(e.node.Freq)
	if e.level >= 0 && e.node.InList() {
		m.queues[e.level].Remove(e.node)
	}
	e.level = lvl
	e.expire = m.clock + m.lifeTime
	m.queues[lvl].PushFront(e.node)
}

// adjust demotes expired queue heads one level, implementing the
// lifeTime-based aging of the original algorithm.
func (m *MQ) adjust() {
	for lvl := 1; lvl < mqLevels; lvl++ {
		tail := m.queues[lvl].Back()
		if tail == nil {
			continue
		}
		e := m.entries[tail.Key]
		if e.expire < m.clock {
			m.queues[lvl].Remove(tail)
			e.level = lvl - 1
			e.expire = m.clock + m.lifeTime
			m.queues[lvl-1].PushFront(tail)
		}
	}
}

func (m *MQ) evict() {
	for lvl := 0; lvl < mqLevels; lvl++ {
		n := m.queues[lvl].PopBack()
		if n == nil {
			continue
		}
		delete(m.entries, n.Key)
		m.used -= uint64(n.Size)
		m.qout.push(n.Key, n.Size)
		m.outFreq[n.Key] = n.Freq
		m.gcOutFreq()
		m.notify(n.Key, n.Size, int(n.Freq)-1, uint64(n.Aux))
		return
	}
}

// gcOutFreq bounds the remembered-frequency map to Qout's contents.
func (m *MQ) gcOutFreq() {
	if len(m.outFreq) <= 2*m.qout.len()+64 {
		return
	}
	for k := range m.outFreq {
		if !m.qout.contains(k) {
			delete(m.outFreq, k)
		}
	}
}

// Contains implements Policy.
func (m *MQ) Contains(key uint64) bool {
	_, ok := m.entries[key]
	return ok
}

// Delete implements Policy.
func (m *MQ) Delete(key uint64) {
	if e, ok := m.entries[key]; ok {
		m.queues[e.level].Remove(e.node)
		delete(m.entries, key)
		m.used -= uint64(e.node.Size)
	}
}

// Len returns the number of cached objects.
func (m *MQ) Len() int { return len(m.entries) }
