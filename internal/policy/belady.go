package policy

import (
	"container/heap"

	"s3fifo/internal/trace"
)

// Belady is the offline optimal (for unit-size objects) eviction policy:
// on each miss it evicts the resident object whose next use is furthest in
// the future. It needs the full request sequence up front and must be
// replayed in exactly that order. Used for the frequency-at-eviction
// analysis of Fig. 4 and as an upper bound in tests.
//
// With variable sizes Belady's rule is no longer optimal (size-aware
// offline optimality is NP-hard); we keep the furthest-next-use rule,
// which is the customary "Belady" extension.
type Belady struct {
	base
	next     []uint64 // next[i] = position of the next request for the same key, or infinity
	pos      int      // cursor into the trace
	resident map[uint64]*beladyEntry
	pq       beladyHeap
}

type beladyEntry struct {
	size     uint32
	nextUse  uint64
	freq     int
	inserted uint64
}

const beladyInf = ^uint64(0)

type beladyItem struct {
	key     uint64
	nextUse uint64
}

type beladyHeap []beladyItem

func (h beladyHeap) Len() int           { return len(h) }
func (h beladyHeap) Less(i, j int) bool { return h[i].nextUse > h[j].nextUse } // max-heap
func (h beladyHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *beladyHeap) Push(x any)        { *h = append(*h, x.(beladyItem)) }
func (h *beladyHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// NewBelady builds the offline policy for tr.
func NewBelady(capacity uint64, tr trace.Trace) *Belady {
	b := &Belady{
		base:     base{name: "belady", capacity: capacity},
		next:     make([]uint64, len(tr)),
		resident: make(map[uint64]*beladyEntry),
	}
	last := make(map[uint64]int, len(tr)/2+1)
	for i := len(tr) - 1; i >= 0; i-- {
		if tr[i].Op != trace.OpGet {
			b.next[i] = beladyInf
			continue
		}
		if j, ok := last[tr[i].ID]; ok {
			b.next[i] = uint64(j)
		} else {
			b.next[i] = beladyInf
		}
		last[tr[i].ID] = i
	}
	return b
}

// Request implements Policy. Calls must follow the constructor trace.
func (b *Belady) Request(key uint64, size uint32) bool {
	if b.pos >= len(b.next) {
		panic("belady: more requests than the constructor trace")
	}
	nextUse := b.next[b.pos]
	b.pos++
	b.clock++
	if e, ok := b.resident[key]; ok {
		e.freq++
		e.nextUse = nextUse
		heap.Push(&b.pq, beladyItem{key: key, nextUse: nextUse})
		return true
	}
	if uint64(size) > b.capacity {
		return false
	}
	if nextUse == beladyInf {
		// Never used again: optimal is to bypass entirely. (Belady with
		// bypass; matches what libCacheSim's oracle does.)
		return false
	}
	if b.used+uint64(size) > b.capacity {
		// Bypass also when the incoming object would be the first victim:
		// admitting it only to evict it before its next use is the same
		// miss count with pointless churn.
		if far, ok := b.peekMaxNextUse(); ok && nextUse >= far {
			return false
		}
	}
	for b.used+uint64(size) > b.capacity {
		b.evict()
	}
	b.resident[key] = &beladyEntry{size: size, nextUse: nextUse, inserted: b.clock}
	heap.Push(&b.pq, beladyItem{key: key, nextUse: nextUse})
	b.used += uint64(size)
	return false
}

// peekMaxNextUse returns the furthest next-use time among residents,
// discarding stale heap entries on the way.
func (b *Belady) peekMaxNextUse() (uint64, bool) {
	for b.pq.Len() > 0 {
		top := b.pq[0]
		e, ok := b.resident[top.key]
		if !ok || e.nextUse != top.nextUse {
			heap.Pop(&b.pq)
			continue
		}
		return top.nextUse, true
	}
	return 0, false
}

func (b *Belady) evict() {
	for b.pq.Len() > 0 {
		item := heap.Pop(&b.pq).(beladyItem)
		e, ok := b.resident[item.key]
		if !ok || e.nextUse != item.nextUse {
			continue // stale
		}
		delete(b.resident, item.key)
		b.used -= uint64(e.size)
		b.notify(item.key, e.size, e.freq, e.inserted)
		return
	}
}

// Contains implements Policy.
func (b *Belady) Contains(key uint64) bool {
	_, ok := b.resident[key]
	return ok
}

// Delete implements Policy.
func (b *Belady) Delete(key uint64) {
	if e, ok := b.resident[key]; ok {
		delete(b.resident, key)
		b.used -= uint64(e.size)
	}
}

// Len returns the number of cached objects.
func (b *Belady) Len() int { return len(b.resident) }
