package policy

import "s3fifo/internal/list"

// SegmentedFIFO is Turner & Levy's Segmented FIFO (§7 of the paper): N
// FIFO segments where an object hit in a lower segment is promoted to the
// head of the top segment on its next eviction consideration. It has no
// ghost queue and, as the paper notes, does not perform quick demotion, so
// its efficiency trails LRU.
type SegmentedFIFO struct {
	base
	segments []*list.List
	caps     []uint64
	sizes    []uint64
	index    map[uint64]*sfifoEntry
}

type sfifoEntry struct {
	node    *list.Node
	segment int
	hit     bool
}

// NewSegmentedFIFO returns a segmented FIFO with n equal segments.
func NewSegmentedFIFO(capacity uint64, n int) *SegmentedFIFO {
	if n < 1 {
		n = 1
	}
	s := &SegmentedFIFO{
		base:  base{name: "sfifo", capacity: capacity},
		index: make(map[uint64]*sfifoEntry),
	}
	for i := 0; i < n; i++ {
		s.segments = append(s.segments, list.New())
		c := capacity / uint64(n)
		if i == 0 {
			c += capacity % uint64(n)
		}
		s.caps = append(s.caps, c)
	}
	s.sizes = make([]uint64, n)
	return s
}

// Request implements Policy. New objects enter segment 0 (the probationary
// segment); overflow from segment i moves unreferenced objects to segment
// i+1 and promotes referenced objects back to segment 0's head.
func (s *SegmentedFIFO) Request(key uint64, size uint32) bool {
	s.clock++
	if e, ok := s.index[key]; ok {
		e.node.Freq++
		e.hit = true
		return true
	}
	if uint64(size) > s.capacity {
		return false
	}
	s.insert(0, &list.Node{Key: key, Size: size, Aux: int64(s.clock)}, false)
	return false
}

func (s *SegmentedFIFO) insert(segment int, n *list.Node, hit bool) {
	for s.sizes[segment]+uint64(n.Size) > s.caps[segment] {
		s.overflow(segment)
	}
	s.segments[segment].PushFront(n)
	s.sizes[segment] += uint64(n.Size)
	if e, ok := s.index[n.Key]; ok {
		e.node = n
		e.segment = segment
		e.hit = hit
	} else {
		s.index[n.Key] = &sfifoEntry{node: n, segment: segment, hit: hit}
		s.used += uint64(n.Size)
	}
}

// overflow handles eviction pressure on a segment: referenced objects get
// a second chance at the head of segment 0; unreferenced objects demote to
// the next segment or leave the cache from the last one.
func (s *SegmentedFIFO) overflow(segment int) {
	n := s.segments[segment].PopBack()
	if n == nil {
		return
	}
	s.sizes[segment] -= uint64(n.Size)
	e := s.index[n.Key]
	switch {
	case e.hit:
		e.hit = false
		s.insert(0, n, false)
	case segment+1 < len(s.segments):
		s.insert(segment+1, n, false)
	default:
		delete(s.index, n.Key)
		s.used -= uint64(n.Size)
		s.notify(n.Key, n.Size, int(n.Freq), uint64(n.Aux))
	}
}

// Contains implements Policy.
func (s *SegmentedFIFO) Contains(key uint64) bool {
	_, ok := s.index[key]
	return ok
}

// Delete implements Policy.
func (s *SegmentedFIFO) Delete(key uint64) {
	e, ok := s.index[key]
	if !ok {
		return
	}
	s.segments[e.segment].Remove(e.node)
	s.sizes[e.segment] -= uint64(e.node.Size)
	s.used -= uint64(e.node.Size)
	delete(s.index, key)
}

// Len returns the number of cached objects.
func (s *SegmentedFIFO) Len() int { return len(s.index) }
