// Package filetier is the small-deployment second tier: a bucketed
// file-persist store in the spirit of sfcache's persist_file layer. Keys
// hash into a fixed set of buckets, each bucket is one append-only file
// of CRC-checked records, and an in-memory index maps key -> (bucket,
// offset). When a bucket outgrows its share of the byte budget it is
// compacted in place: live records are rewritten newest-preserved and
// the oldest are dropped (per-bucket FIFO eviction).
//
// Compared to internal/flash there is no segment log, no reclamation
// generation, and no read-frequency tracking — just files that survive
// a restart. That trades write amplification (compaction rewrites whole
// buckets) for simplicity, which is the right trade when the tier holds
// megabytes, not terabytes. The store is safe for concurrent use via
// one store mutex, and runs on the same faultfs seam as the flash store
// so the fault-injection suite drives its failure paths too.
package filetier

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"s3fifo/internal/faultfs"
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("filetier: store closed")

// Record layout, little-endian (same shape as the flash store's):
//
//	magic   uint32
//	flags   uint8   bit 0 = tombstone
//	klen    uint16
//	vlen    uint32
//	expires int64
//	crc     uint32  CRC32 (IEEE) of flags..expires plus key and value
//	key, value
const (
	recordMagic = 0x53465431 // "SFT1"
	headerSize  = 4 + 1 + 2 + 4 + 8 + 4
	flagDead    = 1

	// MaxKeyLen and MaxValueLen bound one record.
	MaxKeyLen   = 1 << 16
	MaxValueLen = 1 << 30
)

// Options configure Open.
type Options struct {
	// Dir holds the bucket files; created if missing. Required.
	Dir string
	// MaxBytes caps the on-disk footprint, split evenly across buckets.
	// Required.
	MaxBytes uint64
	// Buckets is the number of bucket files (default 64, clamped so each
	// bucket holds at least 4 KiB).
	Buckets int
	// FS is the filesystem seam. Default faultfs.OS().
	FS faultfs.FS
}

func (o Options) withDefaults() (Options, error) {
	if o.Dir == "" {
		return o, fmt.Errorf("filetier: Dir is required")
	}
	if o.MaxBytes == 0 {
		return o, fmt.Errorf("filetier: MaxBytes is required")
	}
	if o.Buckets <= 0 {
		o.Buckets = 64
	}
	for o.Buckets > 1 && o.MaxBytes/uint64(o.Buckets) < 4<<10 {
		o.Buckets /= 2
	}
	if o.FS == nil {
		o.FS = faultfs.OS()
	}
	return o, nil
}

// Stats are cumulative counters since Open.
type Stats struct {
	Gets, Hits, Misses uint64
	Puts, Deletes      uint64
	// BytesWritten counts every byte written to bucket files, compaction
	// included; GCBytes is the compaction subset.
	BytesWritten uint64
	GCBytes      uint64
	// Compactions counts bucket rewrites; Dropped the live records FIFO-
	// evicted by them.
	Compactions uint64
	Dropped     uint64
	// RecoveredRecords counts index entries rebuilt by the last Open.
	RecoveredRecords uint64
}

type frec struct {
	bucket  uint32
	off     uint64
	klen    uint16
	vlen    uint32
	expires int64
}

func (r frec) size() uint64 { return headerSize + uint64(r.klen) + uint64(r.vlen) }

type bucket struct {
	path string
	f    faultfs.File
	size uint64 // append offset
	live uint64 // bytes of live records
}

// Store is a bucketed file-persist store. Create one with Open.
type Store struct {
	mu      sync.Mutex
	opts    Options
	perB    uint64 // byte budget per bucket
	buckets []*bucket
	index   map[string]frec
	dirty   map[uint32]struct{} // buckets written since the last Sync
	stats   Stats
	closed  bool
	now     func() int64
}

// Open opens (or creates) a store in opts.Dir, rebuilding the index from
// the bucket files.
func Open(opts Options) (*Store, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := opts.FS.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("filetier: %w", err)
	}
	s := &Store{
		opts:  opts,
		perB:  opts.MaxBytes / uint64(opts.Buckets),
		index: make(map[string]frec),
		dirty: make(map[uint32]struct{}),
		now:   func() int64 { return time.Now().UnixNano() },
	}
	for i := 0; i < opts.Buckets; i++ {
		path := filepath.Join(opts.Dir, fmt.Sprintf("bucket-%04d.dat", i))
		f, err := opts.FS.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			s.closeAll()
			return nil, fmt.Errorf("filetier: %w", err)
		}
		b := &bucket{path: path, f: f}
		s.buckets = append(s.buckets, b)
		if err := s.recoverBucket(uint32(i), b); err != nil {
			s.closeAll()
			return nil, err
		}
	}
	return s, nil
}

// bucketFor hashes key to its bucket (FNV-1a).
func (s *Store) bucketFor(key string) uint32 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return uint32(h % uint64(len(s.buckets)))
}

// recoverBucket scans one bucket file, indexing every verifiable record
// (newest per key wins, tombstones erase) and truncating a torn tail.
func (s *Store) recoverBucket(bi uint32, b *bucket) error {
	data, err := s.opts.FS.ReadFile(b.path)
	if err != nil {
		return fmt.Errorf("filetier: recover %s: %w", b.path, err)
	}
	now := s.now()
	off := uint64(0)
	for off+headerSize <= uint64(len(data)) {
		hdr := data[off:]
		if binary.LittleEndian.Uint32(hdr[0:4]) != recordMagic {
			break
		}
		flags := hdr[4]
		klen := binary.LittleEndian.Uint16(hdr[5:7])
		vlen := binary.LittleEndian.Uint32(hdr[7:11])
		expires := int64(binary.LittleEndian.Uint64(hdr[11:19]))
		crc := binary.LittleEndian.Uint32(hdr[19:23])
		total := headerSize + uint64(klen) + uint64(vlen)
		if vlen > MaxValueLen || off+total > uint64(len(data)) {
			break
		}
		body := data[off+headerSize : off+total]
		check := crc32.ChecksumIEEE(hdr[4:19])
		check = crc32.Update(check, crc32.IEEETable, body)
		if check != crc {
			break
		}
		key := string(body[:klen])
		s.dropIndex(key)
		if flags&flagDead == 0 && (expires == 0 || expires > now) {
			s.setIndex(key, frec{bucket: bi, off: off, klen: klen, vlen: vlen, expires: expires})
			s.stats.RecoveredRecords++
		}
		off += total
	}
	if off < uint64(len(data)) {
		if err := s.opts.FS.Truncate(b.path, int64(off)); err != nil {
			return fmt.Errorf("filetier: truncate %s: %w", b.path, err)
		}
	}
	b.size = off
	return nil
}

func (s *Store) setIndex(key string, r frec) {
	s.dropIndex(key)
	s.index[key] = r
	s.buckets[r.bucket].live += r.size()
}

func (s *Store) dropIndex(key string) {
	if old, ok := s.index[key]; ok {
		s.buckets[old.bucket].live -= old.size()
		delete(s.index, key)
	}
}

func (s *Store) closeAll() {
	for _, b := range s.buckets {
		if b.f != nil {
			b.f.Close()
		}
	}
}

// encode builds one record.
func encode(key string, value []byte, expires int64, flags uint8) []byte {
	buf := make([]byte, headerSize+len(key)+len(value))
	binary.LittleEndian.PutUint32(buf[0:4], recordMagic)
	buf[4] = flags
	binary.LittleEndian.PutUint16(buf[5:7], uint16(len(key)))
	binary.LittleEndian.PutUint32(buf[7:11], uint32(len(value)))
	binary.LittleEndian.PutUint64(buf[11:19], uint64(expires))
	copy(buf[headerSize:], key)
	copy(buf[headerSize+len(key):], value)
	crc := crc32.ChecksumIEEE(buf[4:19])
	crc = crc32.Update(crc, crc32.IEEETable, buf[headerSize:])
	binary.LittleEndian.PutUint32(buf[19:23], crc)
	return buf
}

// appendLocked appends one record to bucket bi.
func (s *Store) appendLocked(bi uint32, rec []byte, gc bool) (uint64, error) {
	b := s.buckets[bi]
	if _, err := b.f.WriteAt(rec, int64(b.size)); err != nil {
		return 0, fmt.Errorf("filetier: append: %w", err)
	}
	off := b.size
	b.size += uint64(len(rec))
	s.stats.BytesWritten += uint64(len(rec))
	if gc {
		s.stats.GCBytes += uint64(len(rec))
	}
	s.dirty[bi] = struct{}{}
	return off, nil
}

// Put stores value under key with an optional absolute expiry.
func (s *Store) Put(key string, value []byte, expires int64) error {
	if len(key) == 0 || len(key) >= MaxKeyLen {
		return fmt.Errorf("filetier: key length %d out of range", len(key))
	}
	if len(value) > MaxValueLen {
		return fmt.Errorf("filetier: value too large (%d bytes)", len(value))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	bi := s.bucketFor(key)
	rec := encode(key, value, expires, 0)
	if uint64(len(rec)) > s.perB {
		return fmt.Errorf("filetier: record larger than bucket budget (%d > %d)", len(rec), s.perB)
	}
	off, err := s.appendLocked(bi, rec, false)
	if err != nil {
		return err
	}
	s.stats.Puts++
	s.setIndex(key, frec{bucket: bi, off: off, klen: uint16(len(key)), vlen: uint32(len(value)), expires: expires})
	if s.buckets[bi].size > s.perB {
		return s.compactLocked(bi)
	}
	return nil
}

// compactLocked rewrites bucket bi in place, keeping live unexpired
// records (newest-first priority: when the live set itself exceeds the
// budget, the oldest-inserted records are dropped — per-bucket FIFO).
func (s *Store) compactLocked(bi uint32) error {
	b := s.buckets[bi]
	data := make([]byte, b.size)
	if _, err := b.f.ReadAt(data, 0); err != nil {
		return fmt.Errorf("filetier: compact read %s: %w", b.path, err)
	}

	// Collect live records in insertion order.
	type liveRec struct {
		key  string
		body []byte // full encoded record
		r    frec
	}
	var live []liveRec
	now := s.now()
	off := uint64(0)
	for off+headerSize <= uint64(len(data)) {
		hdr := data[off:]
		klen := binary.LittleEndian.Uint16(hdr[5:7])
		vlen := binary.LittleEndian.Uint32(hdr[7:11])
		total := headerSize + uint64(klen) + uint64(vlen)
		if binary.LittleEndian.Uint32(hdr[0:4]) != recordMagic || off+total > uint64(len(data)) {
			break
		}
		body := data[off+headerSize : off+total]
		key := string(body[:klen])
		if r, ok := s.index[key]; ok && r.bucket == bi && r.off == off {
			if r.expires != 0 && r.expires <= now {
				s.dropIndex(key)
			} else {
				live = append(live, liveRec{key: key, body: data[off : off+total], r: r})
			}
		}
		off += total
	}

	// FIFO eviction: drop oldest until the live set fits in 3/4 of the
	// budget, leaving headroom before the next compaction.
	budget := s.perB * 3 / 4
	var liveBytes uint64
	for _, lr := range live {
		liveBytes += uint64(len(lr.body))
	}
	drop := 0
	for liveBytes > budget && drop < len(live) {
		liveBytes -= uint64(len(live[drop].body))
		s.dropIndex(live[drop].key)
		s.stats.Dropped++
		drop++
	}
	live = live[drop:]

	// Rewrite in place: truncate, then append the survivors. A crash in
	// this window loses the bucket's tail — acceptable for a cache, and
	// the CRC scan on the next Open truncates any torn state away.
	if err := b.f.Sync(); err != nil {
		return fmt.Errorf("filetier: compact sync %s: %w", b.path, err)
	}
	if err := s.opts.FS.Truncate(b.path, 0); err != nil {
		return fmt.Errorf("filetier: compact truncate %s: %w", b.path, err)
	}
	b.size = 0
	b.live = 0
	for _, lr := range live {
		off, err := s.appendLocked(bi, lr.body, true)
		if err != nil {
			return err
		}
		nr := lr.r
		nr.off = off
		s.index[lr.key] = nr
		b.live += nr.size()
	}
	s.stats.Compactions++
	return nil
}

// Get returns the value and expiry stored for key.
func (s *Store) Get(key string) (value []byte, expires int64, ok bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Gets++
	if s.closed {
		return nil, 0, false, ErrClosed
	}
	r, found := s.index[key]
	if !found {
		s.stats.Misses++
		return nil, 0, false, nil
	}
	if r.expires != 0 && r.expires <= s.now() {
		s.dropIndex(key)
		s.stats.Misses++
		return nil, 0, false, nil
	}
	buf := make([]byte, r.size())
	if _, err := s.buckets[r.bucket].f.ReadAt(buf, int64(r.off)); err != nil {
		s.dropIndex(key)
		s.stats.Misses++
		return nil, 0, false, fmt.Errorf("filetier: read: %w", err)
	}
	crc := binary.LittleEndian.Uint32(buf[19:23])
	check := crc32.ChecksumIEEE(buf[4:19])
	check = crc32.Update(check, crc32.IEEETable, buf[headerSize:])
	if binary.LittleEndian.Uint32(buf[0:4]) != recordMagic || crc != check {
		s.dropIndex(key)
		s.stats.Misses++
		return nil, 0, false, nil // corrupt record: a miss, not device sickness
	}
	s.stats.Hits++
	return buf[headerSize+uint64(r.klen):], r.expires, true, nil
}

// Contains reports whether key has a live, unexpired record.
func (s *Store) Contains(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	r, ok := s.index[key]
	if !ok {
		return false
	}
	if r.expires != 0 && r.expires <= s.now() {
		s.dropIndex(key)
		return false
	}
	return true
}

// Delete removes key, appending a tombstone so the delete survives
// restart. It reports whether the key was present.
func (s *Store) Delete(key string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, ErrClosed
	}
	r, ok := s.index[key]
	if !ok {
		return false, nil
	}
	s.dropIndex(key)
	s.stats.Deletes++
	if _, err := s.appendLocked(r.bucket, encode(key, nil, 0, flagDead), false); err != nil {
		return true, err
	}
	if s.buckets[r.bucket].size > s.perB {
		return true, s.compactLocked(r.bucket)
	}
	return true, nil
}

// Sync flushes every bucket written since the last Sync. With nothing
// dirty it syncs one bucket anyway so the call still probes the device
// (the breaker depends on Sync exercising real I/O).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if len(s.dirty) == 0 {
		return s.buckets[0].f.Sync()
	}
	for bi := range s.dirty {
		if err := s.buckets[bi].f.Sync(); err != nil {
			return err
		}
		delete(s.dirty, bi)
	}
	return nil
}

// Reset drops every record, truncating all bucket files.
func (s *Store) Reset() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	for _, b := range s.buckets {
		if err := s.opts.FS.Truncate(b.path, 0); err != nil {
			return fmt.Errorf("filetier: reset: %w", err)
		}
		b.size = 0
		b.live = 0
	}
	s.index = make(map[string]frec)
	return nil
}

// Len returns the number of live records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Buckets returns the bucket-file count.
func (s *Store) Buckets() int { return len(s.buckets) }

// Stats returns cumulative counters since Open.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close syncs and closes every bucket file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	for bi := range s.dirty {
		if e := s.buckets[bi].f.Sync(); e != nil && err == nil {
			err = e
		}
	}
	s.closeAll()
	return err
}
