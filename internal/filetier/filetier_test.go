package filetier

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), MaxBytes: 1 << 20, Buckets: 4})
	binary := []byte{0, 1, 2, 0xff, '\r', '\n', 'S', 'F'}
	cases := map[string][]byte{
		"plain":  []byte("value"),
		"binary": binary,
		"empty":  {},
	}
	for k, v := range cases {
		if err := s.Put(k, v, 0); err != nil {
			t.Fatalf("Put(%q): %v", k, err)
		}
	}
	for k, v := range cases {
		got, exp, ok, err := s.Get(k)
		if err != nil || !ok {
			t.Fatalf("Get(%q): ok=%v err=%v", k, ok, err)
		}
		if !bytes.Equal(got, v) || exp != 0 {
			t.Fatalf("Get(%q) = %q exp=%d", k, got, exp)
		}
	}
	if _, _, ok, err := s.Get("absent"); ok || err != nil {
		t.Fatalf("Get(absent) = ok=%v err=%v", ok, err)
	}
	if s.Len() != len(cases) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(cases))
	}
	st := s.Stats()
	if st.Puts != 3 || st.Hits != 3 || st.Misses != 1 || st.BytesWritten == 0 {
		t.Fatalf("stats off: %+v", st)
	}
}

func TestOverwriteServesLatest(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), MaxBytes: 1 << 20, Buckets: 1})
	for i := 0; i < 10; i++ {
		if err := s.Put("key", []byte(fmt.Sprintf("v%d", i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	v, _, ok, err := s.Get("key")
	if err != nil || !ok || string(v) != "v9" {
		t.Fatalf("Get = %q ok=%v err=%v", v, ok, err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after overwrites", s.Len())
	}
}

func TestDeleteTombstone(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), MaxBytes: 1 << 20, Buckets: 2})
	s.Put("gone", []byte("x"), 0)
	existed, err := s.Delete("gone")
	if err != nil || !existed {
		t.Fatalf("Delete: existed=%v err=%v", existed, err)
	}
	if _, _, ok, _ := s.Get("gone"); ok {
		t.Fatal("deleted key served")
	}
	if existed, _ := s.Delete("never"); existed {
		t.Fatal("Delete(absent) reported existed")
	}
}

func TestTTLExpiry(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), MaxBytes: 1 << 20, Buckets: 2})
	clock := time.Now().UnixNano()
	s.now = func() int64 { return clock }
	s.Put("ttl", []byte("v"), clock+int64(time.Minute))
	if _, _, ok, _ := s.Get("ttl"); !ok {
		t.Fatal("unexpired entry missed")
	}
	clock += int64(2 * time.Minute)
	if _, _, ok, _ := s.Get("ttl"); ok {
		t.Fatal("expired entry served")
	}
}

func TestRecoveryAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, MaxBytes: 1 << 20, Buckets: 4})
	for i := 0; i < 50; i++ {
		if err := s.Put(fmt.Sprintf("key-%02d", i), []byte(fmt.Sprintf("val-%02d", i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	s.Delete("key-07")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, Options{Dir: dir, MaxBytes: 1 << 20, Buckets: 4})
	if r.Len() != 49 {
		t.Fatalf("recovered %d entries, want 49", r.Len())
	}
	if r.Stats().RecoveredRecords == 0 {
		t.Fatal("RecoveredRecords not counted")
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%02d", i)
		v, _, ok, err := r.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if i == 7 {
			if ok {
				t.Fatal("tombstoned key resurrected by recovery")
			}
			continue
		}
		if !ok || string(v) != fmt.Sprintf("val-%02d", i) {
			t.Fatalf("%s = %q ok=%v after reopen", key, v, ok)
		}
	}
}

// TestTornTailTruncated: a crash mid-append leaves a partial record at a
// bucket's tail; recovery must truncate it and keep everything before it.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, MaxBytes: 1 << 20, Buckets: 1})
	s.Put("whole", []byte("intact"), 0)
	s.Close()

	path := filepath.Join(dir, "bucket-0000.dat")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A plausible record head with most of its body missing.
	f.Write([]byte{0x53, 0x46, 0x54, 0x31, 0, 0, 4, 0, 0, 0})
	f.Close()

	r := mustOpen(t, Options{Dir: dir, MaxBytes: 1 << 20, Buckets: 1})
	if v, _, ok, err := r.Get("whole"); err != nil || !ok || string(v) != "intact" {
		t.Fatalf("record before torn tail lost: %q ok=%v err=%v", v, ok, err)
	}
	// The tail was truncated away, so appends continue from a clean
	// offset and survive another recovery.
	if err := r.Put("after", []byte("crash"), 0); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r2 := mustOpen(t, Options{Dir: dir, MaxBytes: 1 << 20, Buckets: 1})
	if v, _, ok, _ := r2.Get("after"); !ok || string(v) != "crash" {
		t.Fatalf("append after torn-tail recovery lost: %q ok=%v", v, ok)
	}
}

// TestCorruptRecordIsMiss: flipped value bytes fail the record CRC, and
// the read reports a miss, not an error (the DRAM tier re-fetches).
func TestCorruptRecordIsMiss(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, MaxBytes: 1 << 20, Buckets: 1})
	s.Put("victim", bytes.Repeat([]byte("v"), 64), 0)

	path := filepath.Join(dir, "bucket-0000.dat")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := s.Get("victim"); ok || err != nil {
		t.Fatalf("corrupt record: ok=%v err=%v, want miss", ok, err)
	}
}

// TestCompaction fills one bucket past its budget and checks the rewrite:
// dead space reclaimed, oldest live records FIFO-dropped to 3/4 budget,
// survivors still served, counters advanced.
func TestCompaction(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), MaxBytes: 8 << 10, Buckets: 1})
	val := bytes.Repeat([]byte("x"), 256)
	for i := 0; i < 64; i++ {
		if err := s.Put(fmt.Sprintf("key-%03d", i), val, 0); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Compactions == 0 || st.GCBytes == 0 {
		t.Fatalf("no compactions after overflow: %+v", st)
	}
	if st.Dropped == 0 {
		t.Fatalf("FIFO eviction dropped nothing: %+v", st)
	}
	// Newest entries survive FIFO eviction; every surviving entry reads
	// back correctly.
	if _, _, ok, err := s.Get("key-063"); err != nil || !ok {
		t.Fatalf("newest key lost by compaction: ok=%v err=%v", ok, err)
	}
	live := 0
	for i := 0; i < 64; i++ {
		v, _, ok, err := s.Get(fmt.Sprintf("key-%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			live++
			if !bytes.Equal(v, val) {
				t.Fatalf("key-%03d corrupted by compaction", i)
			}
		}
	}
	if live == 0 || live == 64 {
		t.Fatalf("compaction kept %d of 64", live)
	}
}

func TestReset(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), MaxBytes: 1 << 20, Buckets: 4})
	for i := 0; i < 20; i++ {
		s.Put(fmt.Sprintf("key-%d", i), []byte("v"), 0)
	}
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after Reset", s.Len())
	}
	if _, _, ok, _ := s.Get("key-0"); ok {
		t.Fatal("entry served after Reset")
	}
	// The store keeps working after a Reset.
	if err := s.Put("fresh", []byte("v"), 0); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := s.Get("fresh"); !ok {
		t.Fatal("Put after Reset not served")
	}
}

func TestClosedErrors(t *testing.T) {
	s := mustOpen(t, Options{Dir: t.TempDir(), MaxBytes: 1 << 20})
	s.Put("k", []byte("v"), 0)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k2", []byte("v"), 0); err != ErrClosed {
		t.Fatalf("Put after Close: %v, want ErrClosed", err)
	}
	if _, _, _, err := s.Get("k"); err != ErrClosed {
		t.Fatalf("Get after Close: %v, want ErrClosed", err)
	}
	if err := s.Sync(); err != ErrClosed {
		t.Fatalf("Sync after Close: %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
