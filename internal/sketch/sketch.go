// Package sketch provides the probabilistic frequency/membership structures
// used by admission- and frequency-based eviction algorithms: a count-min
// sketch with periodic aging (TinyLFU), a Bloom filter (B-LRU admission),
// and a doorkeeper (a Bloom filter that absorbs the first occurrence of each
// key in front of a count-min sketch).
package sketch

import "math"

// mix64 is the SplitMix64 finalizer, a cheap high-quality 64-bit mixer used
// to derive independent hash functions from a key and a seed.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Hash returns a mixed hash of key with the given seed. Exported for the
// ghost table and sharded caches, which need compatible fingerprints.
func Hash(key, seed uint64) uint64 { return mix64(key ^ mix64(seed)) }

// CountMin is a 4-row count-min sketch of 4-bit counters with TinyLFU-style
// aging: once the total number of increments reaches the reset sample size,
// every counter is halved. Estimates are therefore frequency over a sliding
// window of roughly the sample size.
type CountMin struct {
	rows    [4][]uint8 // 4-bit counters packed two per byte
	mask    uint64
	sample  uint64 // increments before a reset
	applied uint64 // increments since the last reset
}

// NewCountMin returns a sketch sized for counting roughly n distinct keys.
// The reset window is 10·n increments, mirroring TinyLFU's W=10C choice.
func NewCountMin(n int) *CountMin {
	if n < 16 {
		n = 16
	}
	// Round the number of counters per row up to a power of two ≥ n.
	size := 1
	for size < n {
		size *= 2
	}
	cm := &CountMin{mask: uint64(size - 1), sample: uint64(10 * size)}
	for i := range cm.rows {
		cm.rows[i] = make([]uint8, size/2+1)
	}
	return cm
}

func (cm *CountMin) counter(row int, idx uint64) uint8 {
	b := cm.rows[row][idx/2]
	if idx%2 == 0 {
		return b & 0x0f
	}
	return b >> 4
}

func (cm *CountMin) setCounter(row int, idx uint64, v uint8) {
	p := &cm.rows[row][idx/2]
	if idx%2 == 0 {
		*p = (*p &^ 0x0f) | (v & 0x0f)
	} else {
		*p = (*p &^ 0xf0) | (v << 4)
	}
}

// Add increments the counters for key, saturating at 15, and ages the
// sketch when the reset window is exhausted.
func (cm *CountMin) Add(key uint64) {
	for row := range cm.rows {
		idx := Hash(key, uint64(row)+1) & cm.mask
		if c := cm.counter(row, idx); c < 15 {
			cm.setCounter(row, idx, c+1)
		}
	}
	cm.applied++
	if cm.applied >= cm.sample {
		cm.reset()
	}
}

// Estimate returns the estimated frequency of key (0..15).
func (cm *CountMin) Estimate(key uint64) uint8 {
	est := uint8(15)
	for row := range cm.rows {
		idx := Hash(key, uint64(row)+1) & cm.mask
		if c := cm.counter(row, idx); c < est {
			est = c
		}
	}
	return est
}

// reset halves every counter (TinyLFU aging).
func (cm *CountMin) reset() {
	for row := range cm.rows {
		for i, b := range cm.rows[row] {
			// Halve both packed 4-bit counters.
			cm.rows[row][i] = (b >> 1) & 0x77
		}
	}
	cm.applied = 0
}

// Bloom is a standard Bloom filter over uint64 keys.
type Bloom struct {
	bits   []uint64
	mask   uint64
	hashes int
	count  int
}

// NewBloom returns a filter sized for n keys at the given target false
// positive rate.
func NewBloom(n int, fpRate float64) *Bloom {
	if n < 1 {
		n = 1
	}
	if fpRate <= 0 || fpRate >= 1 {
		fpRate = 0.01
	}
	mBits := int(math.Ceil(-float64(n) * math.Log(fpRate) / (math.Ln2 * math.Ln2)))
	size := 64
	for size < mBits {
		size *= 2
	}
	k := int(math.Round(float64(size) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 8 {
		k = 8
	}
	return &Bloom{bits: make([]uint64, size/64), mask: uint64(size - 1), hashes: k}
}

// Add inserts key into the filter.
func (b *Bloom) Add(key uint64) {
	for i := 0; i < b.hashes; i++ {
		bit := Hash(key, uint64(i)+101) & b.mask
		b.bits[bit/64] |= 1 << (bit % 64)
	}
	b.count++
}

// Contains reports whether key may be in the filter (false positives
// possible, false negatives not).
func (b *Bloom) Contains(key uint64) bool {
	for i := 0; i < b.hashes; i++ {
		bit := Hash(key, uint64(i)+101) & b.mask
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Count returns the number of Add calls since creation or the last Clear.
func (b *Bloom) Count() int { return b.count }

// Clear empties the filter.
func (b *Bloom) Clear() {
	for i := range b.bits {
		b.bits[i] = 0
	}
	b.count = 0
}

// Doorkeeper is a Bloom filter placed in front of a count-min sketch: the
// first occurrence of a key is recorded in the filter; only repeat
// occurrences reach the sketch. It clears itself alongside sketch aging.
type Doorkeeper struct {
	bloom *Bloom
	cap   int
}

// NewDoorkeeper returns a doorkeeper sized for n keys; it self-clears after
// n insertions to bound staleness.
func NewDoorkeeper(n int) *Doorkeeper {
	if n < 1 {
		n = 1
	}
	return &Doorkeeper{bloom: NewBloom(n, 0.01), cap: n}
}

// Allow records key and reports whether it had been seen before (true means
// the caller should count this occurrence in its sketch).
func (d *Doorkeeper) Allow(key uint64) bool {
	if d.bloom.Contains(key) {
		return true
	}
	if d.bloom.Count() >= d.cap {
		d.bloom.Clear()
	}
	d.bloom.Add(key)
	return false
}
