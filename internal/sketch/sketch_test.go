package sketch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCountMinBasic(t *testing.T) {
	cm := NewCountMin(1024)
	for i := 0; i < 7; i++ {
		cm.Add(42)
	}
	if got := cm.Estimate(42); got < 7 {
		t.Errorf("Estimate(42) = %d, want >= 7", got)
	}
	if got := cm.Estimate(43); got > 7 {
		t.Errorf("Estimate(unseen) = %d, want small", got)
	}
}

func TestCountMinSaturates(t *testing.T) {
	cm := NewCountMin(1024)
	for i := 0; i < 100; i++ {
		cm.Add(7)
	}
	if got := cm.Estimate(7); got != 15 {
		t.Errorf("Estimate = %d, want saturation at 15", got)
	}
}

// TestCountMinNeverUndercounts: count-min estimates are always >= true count
// (up to saturation and before aging).
func TestCountMinNeverUndercounts(t *testing.T) {
	f := func(keys []uint64) bool {
		cm := NewCountMin(4096)
		counts := map[uint64]int{}
		for _, k := range keys {
			if counts[k] >= 15 {
				continue
			}
			cm.Add(k)
			counts[k]++
		}
		for k, c := range counts {
			if int(cm.Estimate(k)) < c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCountMinAging(t *testing.T) {
	cm := NewCountMin(16)
	for i := 0; i < 10; i++ {
		cm.Add(5)
	}
	before := cm.Estimate(5)
	// Force enough increments to trigger at least one reset.
	for i := uint64(0); i < cm.sample+1; i++ {
		cm.Add(i % 8)
	}
	// Counter for key 5 must have been halved at least once (it saturates at
	// 15, so after one halving it is <= 7 plus whatever re-accumulated from
	// the i%8 adds; key 5 is in that set so it can grow back. Use a key that
	// does not recur instead.)
	cm2 := NewCountMin(16)
	for i := 0; i < 10; i++ {
		cm2.Add(1000003)
	}
	if cm2.Estimate(1000003) < 10 {
		t.Fatal("setup: estimate should be >= 10")
	}
	for i := uint64(0); i < cm2.sample+1; i++ {
		cm2.Add(i) // distinct keys, none equal to 1000003... may collide but rarely all rows
	}
	after := cm2.Estimate(1000003)
	if after >= 10 {
		t.Errorf("after aging, estimate = %d, want < 10 (before was %d)", after, before)
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	f := func(keys []uint64) bool {
		b := NewBloom(len(keys)+1, 0.01)
		for _, k := range keys {
			b.Add(k)
		}
		for _, k := range keys {
			if !b.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	n := 10000
	b := NewBloom(n, 0.01)
	rng := rand.New(rand.NewSource(7))
	inserted := map[uint64]bool{}
	for i := 0; i < n; i++ {
		k := rng.Uint64()
		inserted[k] = true
		b.Add(k)
	}
	fp := 0
	trials := 100000
	for i := 0; i < trials; i++ {
		k := rng.Uint64()
		if inserted[k] {
			continue
		}
		if b.Contains(k) {
			fp++
		}
	}
	rate := float64(fp) / float64(trials)
	if rate > 0.05 {
		t.Errorf("false positive rate = %.4f, want <= 0.05", rate)
	}
}

func TestBloomClear(t *testing.T) {
	b := NewBloom(100, 0.01)
	b.Add(1)
	if !b.Contains(1) {
		t.Fatal("Contains(1) after Add should be true")
	}
	b.Clear()
	if b.Contains(1) {
		t.Error("Contains(1) after Clear should be false")
	}
	if b.Count() != 0 {
		t.Errorf("Count after Clear = %d", b.Count())
	}
}

func TestBloomDegenerateParams(t *testing.T) {
	b := NewBloom(0, 2.0) // clamped internally
	b.Add(9)
	if !b.Contains(9) {
		t.Error("clamped filter lost key")
	}
}

func TestDoorkeeperFirstSeen(t *testing.T) {
	d := NewDoorkeeper(1000)
	if d.Allow(5) {
		t.Error("first occurrence should return false")
	}
	if !d.Allow(5) {
		t.Error("second occurrence should return true")
	}
}

func TestDoorkeeperSelfClears(t *testing.T) {
	d := NewDoorkeeper(8)
	for i := uint64(0); i < 100; i++ {
		d.Allow(i)
	}
	// After many inserts the filter must have cleared at least once, so its
	// live count stays bounded.
	if d.bloom.Count() > 8 {
		t.Errorf("doorkeeper bloom count = %d, want <= 8", d.bloom.Count())
	}
}

func TestHashDeterminismAndSpread(t *testing.T) {
	if Hash(1, 2) != Hash(1, 2) {
		t.Error("Hash not deterministic")
	}
	if Hash(1, 2) == Hash(1, 3) || Hash(1, 2) == Hash(2, 2) {
		t.Error("Hash should differ across seeds and keys")
	}
	// Low bits should be well distributed for sequential keys.
	buckets := make([]int, 16)
	for i := uint64(0); i < 16000; i++ {
		buckets[Hash(i, 0)%16]++
	}
	for i, c := range buckets {
		if c < 500 || c > 1500 {
			t.Errorf("bucket %d has %d of 16000 keys; poor spread", i, c)
		}
	}
}

func BenchmarkCountMinAdd(b *testing.B) {
	cm := NewCountMin(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm.Add(uint64(i))
	}
}

func BenchmarkCountMinEstimate(b *testing.B) {
	cm := NewCountMin(1 << 16)
	for i := 0; i < 1<<16; i++ {
		cm.Add(uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm.Estimate(uint64(i))
	}
}
