package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); !almostEqual(got, 2.5) {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {10, 1.4}, {90, 4.6},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v", got)
	}
	if got := Percentile([]float64{7}, 33); got != 7 {
		t.Errorf("Percentile(single) = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestMissRatioReduction(t *testing.T) {
	cases := []struct {
		fifo, algo, want float64
	}{
		{0.5, 0.25, 0.5},  // algorithm halves the miss ratio
		{0.5, 0.5, 0},     // tie
		{0.25, 0.5, -0.5}, // algorithm doubles the miss ratio
		{0.5, 0, 1},       // perfect
		{0, 0, 0},         // degenerate
		{0, 0.5, -1},      // fifo perfect, algo not
	}
	for _, c := range cases {
		if got := MissRatioReduction(c.fifo, c.algo); !almostEqual(got, c.want) {
			t.Errorf("MissRatioReduction(%v,%v) = %v, want %v", c.fifo, c.algo, got, c.want)
		}
	}
}

// Property: the reduction metric is always within [-1, 1].
func TestMissRatioReductionBounded(t *testing.T) {
	f := func(a, b float64) bool {
		fifo := math.Abs(math.Mod(a, 1))
		algo := math.Abs(math.Mod(b, 1))
		r := MissRatioReduction(fifo, algo)
		return r >= -1-1e-12 && r <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: sign agrees with which algorithm won.
func TestMissRatioReductionSign(t *testing.T) {
	f := func(a, b float64) bool {
		fifo := math.Abs(math.Mod(a, 1)) + 0.01
		algo := math.Abs(math.Mod(b, 1)) + 0.01
		r := MissRatioReduction(fifo, algo)
		switch {
		case algo < fifo:
			return r > 0
		case algo > fifo:
			return r < 0
		default:
			return r == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s := Summarize(xs)
	if s.N != 10 || !almostEqual(s.Mean, 5.5) || !almostEqual(s.P50, 5.5) {
		t.Errorf("Summarize = %+v", s)
	}
	if s.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(4)
	for _, v := range []int{0, 0, 1, 2, 3, 99, -5} {
		h.Observe(v)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
	// -5 clamps to bucket 0, 99 clamps to overflow (bucket 4).
	if h.Count(0) != 3 {
		t.Errorf("Count(0) = %d, want 3", h.Count(0))
	}
	if h.Count(4) != 1 {
		t.Errorf("overflow Count = %d, want 1", h.Count(4))
	}
	if h.Count(-1) != 0 || h.Count(100) != 0 {
		t.Error("out-of-range Count should be 0")
	}
	if !almostEqual(h.Fraction(0), 3.0/7) {
		t.Errorf("Fraction(0) = %v", h.Fraction(0))
	}
	if !almostEqual(h.CDF(3), 6.0/7) {
		t.Errorf("CDF(3) = %v", h.CDF(3))
	}
	if !almostEqual(h.CDF(100), 1) {
		t.Errorf("CDF(overflow) = %v", h.CDF(100))
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0) // clamps to 1 bucket + overflow
	if h.Fraction(0) != 0 || h.CDF(0) != 0 {
		t.Error("empty histogram fractions should be 0")
	}
}
