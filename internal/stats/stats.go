// Package stats provides the aggregation utilities used when reporting the
// paper's evaluation: percentiles over per-trace results, streaming
// histograms, and the bounded miss-ratio-reduction metric of §5.1.2.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// MissRatioReduction computes the bounded reduction metric from §5.1.2:
// (MRfifo-MRalgo)/MRfifo when the algorithm beats FIFO, and
// -(MRalgo-MRfifo)/MRalgo otherwise, bounding the value to [-1, 1] and
// avoiding outlier blowups when FIFO's miss ratio is tiny.
func MissRatioReduction(mrFIFO, mrAlgo float64) float64 {
	switch {
	case mrFIFO <= 0 && mrAlgo <= 0:
		return 0
	case mrAlgo <= mrFIFO:
		if mrFIFO == 0 {
			return 0
		}
		return (mrFIFO - mrAlgo) / mrFIFO
	default:
		return -(mrAlgo - mrFIFO) / mrAlgo
	}
}

// Summary holds the percentile summary printed for Fig. 6/7/11-style plots.
type Summary struct {
	N                       int
	Mean                    float64
	P10, P25, P50, P75, P90 float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:    len(xs),
		Mean: Mean(xs),
		P10:  Percentile(xs, 10),
		P25:  Percentile(xs, 25),
		P50:  Percentile(xs, 50),
		P75:  Percentile(xs, 75),
		P90:  Percentile(xs, 90),
	}
}

// String renders the summary as a fixed-width row.
func (s Summary) String() string {
	return fmt.Sprintf("n=%4d mean=%+.3f p10=%+.3f p25=%+.3f p50=%+.3f p75=%+.3f p90=%+.3f",
		s.N, s.Mean, s.P10, s.P25, s.P50, s.P75, s.P90)
}

// Histogram is a fixed-bucket histogram over non-negative integers with an
// overflow bucket, used for frequency-at-eviction (Fig. 4) and eviction-age
// distributions.
type Histogram struct {
	buckets []uint64
	total   uint64
}

// NewHistogram returns a histogram with buckets [0, n) plus overflow.
func NewHistogram(n int) *Histogram {
	if n < 1 {
		n = 1
	}
	return &Histogram{buckets: make([]uint64, n+1)}
}

// Observe records value v, clamping into the overflow bucket.
func (h *Histogram) Observe(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.buckets)-1 {
		v = len(h.buckets) - 1
	}
	h.buckets[v]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Count returns the number of observations in bucket v (the last bucket is
// overflow).
func (h *Histogram) Count(v int) uint64 {
	if v < 0 || v >= len(h.buckets) {
		return 0
	}
	return h.buckets[v]
}

// Fraction returns bucket v's share of all observations.
func (h *Histogram) Fraction(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Count(v)) / float64(h.total)
}

// CDF returns the cumulative fraction of observations <= v.
func (h *Histogram) CDF(v int) float64 {
	if h.total == 0 {
		return 0
	}
	if v >= len(h.buckets)-1 {
		return 1
	}
	var cum uint64
	for i := 0; i <= v; i++ {
		cum += h.buckets[i]
	}
	return float64(cum) / float64(h.total)
}
