// Package s3fifo is a from-scratch Go reproduction of "FIFO queues are
// all you need for cache eviction" (Yang, Zhang, Qiu, Yue & Rashmi,
// SOSP '23).
//
// The public cache library lives in s3fifo/cache. The paper's evaluation
// — the S3-FIFO algorithm and its adaptive variant, 16 baseline eviction
// algorithms, the trace simulator, the synthetic corpus standing in for
// the paper's 6,594 production traces, the concurrent throughput harness,
// and the flash-admission simulator — lives under internal/ and is driven
// by the commands in cmd/ and the benchmarks in bench_test.go. DESIGN.md
// maps every figure and table of the paper to the code that regenerates
// it; EXPERIMENTS.md records paper-vs-measured results.
package s3fifo
