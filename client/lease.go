// The client half of the lease protocol (GETX/SETX, DESIGN.md §14):
// stampede-safe lookups. The intended call pattern is
//
//	r, err := c.GetX(key, grace)
//	switch {
//	case r.Found:        // fresh (or stale-within-grace) value: use it
//	case r.Lease != 0:   // this caller won the fill lease
//	    v, ok := fetchFromBackend(key)
//	    if ok  { c.SetX(key, r.Lease, v, ttl) }
//	    if !ok { c.SetXNegative(key, r.Lease, negTTL) }
//	default:             // plain miss: some other client is filling,
//	}                    // or the key is tombstoned — do NOT hit the backend
//
// so that of N clients missing one key at the same instant, exactly one
// reaches the backend.
package client

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"s3fifo/internal/proto"
)

// ErrLeaseInvalid is returned by SetX and SetXNegative when the server
// rejected the lease token: it expired, was superseded by a newer
// holder, or a delete raced the fill. The fill was not applied (or was
// undone); the caller should simply drop its value — some other client
// owns the key now.
var ErrLeaseInvalid = errors.New("client: lease expired or superseded")

// GetXResult is the outcome of a GetX lookup. Exactly one of three
// shapes comes back: a value (Found, possibly Stale), a lease (Lease
// non-zero — this caller must refill via SetX/SetXNegative), or a bare
// miss (all fields zero — another client is filling, or the key is
// negatively cached; do not hit the backend).
type GetXResult struct {
	Value []byte
	Found bool   // Value is usable (fresh, coalesced, or stale-within-grace)
	Stale bool   // Value is past its TTL, served inside the grace window
	Lease uint64 // non-zero: the fill lease token to redeem with SetX
}

// GetX is the anti-stampede lookup. grace is the longest-expired value
// the caller will accept (stale-while-revalidate); it can narrow the
// server's configured window, never widen it, and 0 accepts the
// server's default of no stale serving.
func (c *Client) GetX(key string, grace time.Duration) (GetXResult, error) {
	if err := checkKey(key); err != nil {
		return GetXResult{}, err
	}
	if c.pipe != nil {
		st, v, err := c.pipe.roundTrip(proto.OpGetx, key, nil, ttlSeconds(grace))
		if err != nil {
			return GetXResult{}, err
		}
		return getxResult(st, v)
	}
	if c.opts.Binary {
		var res GetXResult
		err := c.do(func() error {
			st, v, err := c.binRoundTrip(proto.OpGetx, key, nil, ttlSeconds(grace))
			if err != nil {
				return err
			}
			res, err = getxResult(st, v)
			return err
		})
		return res, err
	}
	var res GetXResult
	err := c.do(func() error {
		res = GetXResult{}
		if grace > 0 {
			fmt.Fprintf(c.w, "getx %s %d\r\n", key, ttlSeconds(grace))
		} else {
			fmt.Fprintf(c.w, "getx %s\r\n", key)
		}
		if err := c.w.Flush(); err != nil {
			return err
		}
		line, err := c.readLine()
		if err != nil {
			return err
		}
		switch {
		case line == "END":
			return nil
		case strings.HasPrefix(line, "ERROR"):
			return errFor(line)
		case strings.HasPrefix(line, "LEASE "):
			tok, err := strconv.ParseUint(strings.TrimPrefix(line, "LEASE "), 16, 64)
			if err != nil {
				return fmt.Errorf("client: malformed LEASE line %q", line)
			}
			res.Lease = tok
			return c.expectEnd()
		case strings.HasPrefix(line, "VALUE "), strings.HasPrefix(line, "STALE "):
			fields := strings.Fields(line)
			if len(fields) != 3 {
				return fmt.Errorf("client: malformed %s line %q", fields[0], line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return fmt.Errorf("client: bad length in %q", line)
			}
			res.Value = make([]byte, n)
			if _, err := io.ReadFull(c.r, res.Value); err != nil {
				return err
			}
			if _, err := c.readLine(); err != nil { // value terminator
				return err
			}
			res.Found = true
			res.Stale = fields[0] == "STALE"
			return c.expectEnd()
		default:
			return fmt.Errorf("client: unexpected response %q", line)
		}
	})
	if err != nil {
		return GetXResult{}, err
	}
	return res, nil
}

// getxResult maps a binary GETX response to a GetXResult.
func getxResult(st proto.Status, v []byte) (GetXResult, error) {
	switch st {
	case proto.StatusOK:
		return GetXResult{Value: v, Found: true}, nil
	case proto.StatusStale:
		return GetXResult{Value: v, Found: true, Stale: true}, nil
	case proto.StatusLease:
		tok, ok := proto.ParseLeaseToken(v)
		if !ok {
			return GetXResult{}, fmt.Errorf("client: short lease token (%d bytes)", len(v))
		}
		return GetXResult{Lease: tok}, nil
	case proto.StatusMiss:
		return GetXResult{}, nil
	default:
		return GetXResult{}, fmt.Errorf("client: unexpected getx status %v", st)
	}
}

// expectEnd consumes the terminating END line of a text getx response.
func (c *Client) expectEnd() error {
	end, err := c.readLine()
	if err != nil {
		return err
	}
	if end != "END" {
		return fmt.Errorf("client: expected END, got %q", end)
	}
	return nil
}

// SetX redeems a fill lease obtained from GetX, storing value under key
// with the given TTL (0 = no expiry). It reports whether the server
// stored the entry; ErrLeaseInvalid means the lease was expired,
// superseded, or killed by a delete, and the fill was discarded.
func (c *Client) SetX(key string, lease uint64, value []byte, ttl time.Duration) (bool, error) {
	if err := checkKey(key); err != nil {
		return false, err
	}
	if len(value) > proto.MaxValueLen {
		return false, &ServerError{Reason: "value too large"}
	}
	return c.setx(key, lease, value, setxTTL(ttl), false)
}

// SetXNegative redeems a fill lease with "the backend has no such key":
// the server records a negative-cache tombstone for ttl (0 = the
// server's configured default) and answers subsequent lookups with an
// immediate miss. Returns ErrLeaseInvalid under the same conditions as
// SetX.
func (c *Client) SetXNegative(key string, lease uint64, ttl time.Duration) error {
	if err := checkKey(key); err != nil {
		return err
	}
	_, err := c.setx(key, lease, nil, setxTTL(ttl), true)
	return err
}

// setxTTL rounds a TTL for the SETX wire field, which reserves bit 31
// for the negative flag.
func setxTTL(ttl time.Duration) uint32 {
	secs := ttlSeconds(ttl)
	if secs > proto.SetxTTLSecondsMax {
		secs = proto.SetxTTLSecondsMax
	}
	return secs
}

func (c *Client) setx(key string, lease uint64, value []byte, ttlSec uint32, negative bool) (bool, error) {
	if c.pipe != nil || c.opts.Binary {
		// Binary framing: value bytes are token ‖ payload; a negative fill
		// sets TTL bit 31 and carries the bare token.
		framed := make([]byte, proto.LeaseTokenLen+len(value))
		proto.PutLeaseToken(framed, lease)
		copy(framed[proto.LeaseTokenLen:], value)
		wireTTL := ttlSec
		if negative {
			wireTTL |= proto.SetxNegativeFlag
		}
		var st proto.Status
		var err error
		if c.pipe != nil {
			st, _, err = c.pipe.roundTrip(proto.OpSetx, key, framed, wireTTL)
		} else {
			err = c.do(func() error {
				st, _, err = c.binRoundTrip(proto.OpSetx, key, framed, wireTTL)
				return err
			})
		}
		if err != nil {
			return false, err
		}
		return setxOutcome(st)
	}
	var stored bool
	var leased bool
	err := c.do(func() error {
		if negative {
			if ttlSec > 0 {
				fmt.Fprintf(c.w, "setx %s %016x neg %d\r\n", key, lease, ttlSec)
			} else {
				fmt.Fprintf(c.w, "setx %s %016x neg\r\n", key, lease)
			}
		} else {
			if ttlSec > 0 {
				fmt.Fprintf(c.w, "setx %s %016x %d %d\r\n", key, lease, len(value), ttlSec)
			} else {
				fmt.Fprintf(c.w, "setx %s %016x %d\r\n", key, lease, len(value))
			}
			c.w.Write(value)
			c.w.WriteString("\r\n")
		}
		if err := c.w.Flush(); err != nil {
			return err
		}
		line, err := c.readLine()
		if err != nil {
			return err
		}
		switch {
		case line == "STORED":
			stored, leased = true, true
			return nil
		case line == "NOT_STORED":
			stored, leased = false, true
			return nil
		case line == "NOT_LEASED":
			stored, leased = false, false
			return nil
		case strings.HasPrefix(line, "ERROR"):
			return errFor(line)
		default:
			return fmt.Errorf("client: unexpected response %q", line)
		}
	})
	if err != nil {
		return false, err
	}
	if !leased {
		return false, ErrLeaseInvalid
	}
	return stored, nil
}

// setxOutcome maps a binary SETX status to the (stored, error) pair.
func setxOutcome(st proto.Status) (bool, error) {
	switch st {
	case proto.StatusOK:
		return true, nil
	case proto.StatusNotStored:
		return false, nil
	case proto.StatusLeaseInvalid:
		return false, ErrLeaseInvalid
	default:
		return false, fmt.Errorf("client: unexpected setx status %v", st)
	}
}
