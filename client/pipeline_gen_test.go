// Regression tests for request-id generation hygiene across pipelined
// redials: ids are reseeded per connection generation, and a response
// carrying an id the current generation never issued must kill the
// connection rather than complete someone else's call.
package client

import (
	"bufio"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"s3fifo/internal/proto"
)

// TestPipelinedIDsReseedPerGeneration: after a redial, the id sequence
// starts from a different generation-salted base, so an id from the old
// connection cannot equal a live id on the new one.
func TestPipelinedIDsReseedPerGeneration(t *testing.T) {
	var mu sync.Mutex
	idsByConn := map[int64][]uint32{}
	srv := newStubServer(t, func(conn net.Conn, nth int64) {
		defer conn.Close()
		r := bufio.NewReader(conn)
		hdr := make([]byte, proto.HeaderLen)
		for {
			if _, err := io.ReadFull(r, hdr); err != nil {
				return
			}
			h, err := proto.ParseRequestHeader(hdr)
			if err != nil {
				return
			}
			if _, err := r.Discard(h.KeyLen + h.ValueLen); err != nil {
				return
			}
			mu.Lock()
			idsByConn[nth] = append(idsByConn[nth], h.ID)
			n := len(idsByConn[nth])
			mu.Unlock()
			if nth == 1 && n == 2 {
				return // drop the first connection mid-stream: forces a redial
			}
			if _, err := conn.Write(proto.AppendResponse(nil, proto.StatusMiss, h.ID, nil)); err != nil {
				return
			}
		}
	})
	c, err := DialOptions(srv.addr(), Options{
		Pipeline:     4,
		Retries:      3,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 4; i++ {
		if _, _, err := c.Get("k"); err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(idsByConn) < 2 {
		t.Fatalf("expected a redial; connections seen: %d", len(idsByConn))
	}
	seen := map[uint32]int64{}
	for conn, ids := range idsByConn {
		for _, id := range ids {
			if prev, dup := seen[id]; dup && prev != conn {
				t.Fatalf("request id %d reused across connection generations %d and %d",
					id, prev, conn)
			}
			seen[id] = conn
		}
	}
	// The reseed must actually move the base, not just continue counting:
	// consecutive generations start 0x9E3779B1 apart.
	first := idsByConn[1][0]
	second := idsByConn[2][0]
	if second == first+uint32(len(idsByConn[1])) {
		t.Fatalf("generation 2 continued generation 1's sequence (%d after %v)",
			second, idsByConn[1])
	}
}

// TestPipelinedStaleIDKillsConnection: a response frame whose id matches
// nothing in flight (a stale frame from a previous generation, a replay,
// a server bug) must fail the connection — and the caller's retry then
// succeeds on a fresh one — never complete an unrelated call.
func TestPipelinedStaleIDKillsConnection(t *testing.T) {
	srv := newStubServer(t, func(conn net.Conn, nth int64) {
		defer conn.Close()
		r := bufio.NewReader(conn)
		hdr := make([]byte, proto.HeaderLen)
		for {
			if _, err := io.ReadFull(r, hdr); err != nil {
				return
			}
			h, err := proto.ParseRequestHeader(hdr)
			if err != nil {
				return
			}
			if _, err := r.Discard(h.KeyLen + h.ValueLen); err != nil {
				return
			}
			id := h.ID
			if nth == 1 {
				id += 12345 // a stale/foreign id: the client never issued it
			}
			if _, err := conn.Write(proto.AppendResponse(nil, proto.StatusOK, id, []byte("poison"))); err != nil {
				return
			}
		}
	})
	c, err := DialOptions(srv.addr(), Options{
		Pipeline:     4,
		Retries:      3,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	v, ok, err := c.Get("k")
	if err != nil {
		t.Fatalf("Get after stale frame: %v", err)
	}
	if !ok || string(v) != "poison" {
		// The value itself is fine — what matters is it arrived on the
		// SECOND connection, matched to the request that asked for it.
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if got := srv.conns.Load(); got != 2 {
		t.Fatalf("server saw %d connections, want 2 (stale id must fail conn 1)", got)
	}
}
