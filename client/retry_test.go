// Client hardening tests against a scriptable stub server: retry with
// redial after dropped connections, no retry on protocol errors, and
// operation timeouts.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// stubServer accepts connections and hands each to handler. conns counts
// accepted connections, so tests can assert how often a client redialed.
type stubServer struct {
	l     net.Listener
	conns atomic.Int64
}

func newStubServer(t *testing.T, handler func(conn net.Conn, nth int64)) *stubServer {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &stubServer{l: l}
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go handler(conn, s.conns.Add(1))
		}
	}()
	t.Cleanup(func() { l.Close() })
	return s
}

func (s *stubServer) addr() string { return s.l.Addr().String() }

// serveProtocol answers get/set/delete/stats minimally and correctly.
func serveProtocol(conn net.Conn, _ int64) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		switch {
		case strings.HasPrefix(line, "get "):
			fmt.Fprintf(conn, "END\r\n")
		case strings.HasPrefix(line, "set "):
			var key string
			var n int
			fmt.Sscanf(line, "set %s %d", &key, &n)
			buf := make([]byte, n+2) // payload + CRLF
			if _, err := r.Read(buf); err != nil {
				return
			}
			fmt.Fprintf(conn, "STORED\r\n")
		case strings.HasPrefix(line, "quit"):
			return
		}
	}
}

func TestRetryRedialsAfterDroppedConn(t *testing.T) {
	// The first two connections die before answering; the third works.
	srv := newStubServer(t, func(conn net.Conn, nth int64) {
		if nth <= 2 {
			// Read the request so the client's write succeeds, then hang up
			// mid-response.
			buf := make([]byte, 256)
			conn.Read(buf)
			conn.Close()
			return
		}
		serveProtocol(conn, nth)
	})
	c, err := DialOptions(srv.addr(), Options{
		Retries:      3,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, ok, err := c.Get("k"); err != nil || ok {
		t.Fatalf("Get through flaky server = %v, %v; want miss, nil", ok, err)
	}
	if got := srv.conns.Load(); got != 3 {
		t.Errorf("server saw %d connections, want 3 (1 dial + 2 redials)", got)
	}
}

func TestRetriesExhaustedReturnsIOError(t *testing.T) {
	srv := newStubServer(t, func(conn net.Conn, _ int64) {
		buf := make([]byte, 256)
		conn.Read(buf)
		conn.Close()
	})
	c, err := DialOptions(srv.addr(), Options{
		Retries:      2,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, _, err = c.Get("k")
	if err == nil {
		t.Fatal("Get succeeded against a server that always hangs up")
	}
	var se *ServerError
	if errors.As(err, &se) {
		t.Fatalf("I/O failure surfaced as ServerError: %v", err)
	}
	if got := srv.conns.Load(); got != 3 {
		t.Errorf("server saw %d connections, want 3 (initial + 2 retries)", got)
	}
}

func TestServerErrorsAreNotRetried(t *testing.T) {
	srv := newStubServer(t, func(conn net.Conn, _ int64) {
		defer conn.Close()
		r := bufio.NewReader(conn)
		for {
			if _, err := r.ReadString('\n'); err != nil {
				return
			}
			fmt.Fprintf(conn, "ERROR synthetic failure\r\n")
		}
	})
	c, err := DialOptions(srv.addr(), Options{
		Retries:      5,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, _, err = c.Get("k")
	var se *ServerError
	if !errors.As(err, &se) || se.Reason != "synthetic failure" {
		t.Fatalf("err = %v, want ServerError(synthetic failure)", err)
	}
	if got := srv.conns.Load(); got != 1 {
		t.Errorf("server saw %d connections; protocol errors must not redial", got)
	}
}

func TestOpTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	srv := newStubServer(t, func(conn net.Conn, _ int64) {
		defer conn.Close()
		<-block // accept, then never answer
	})
	c, err := DialOptions(srv.addr(), Options{OpTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, _, err = c.Get("k")
	if err == nil {
		t.Fatal("Get returned against a silent server")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want a timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("timeout took %v, deadline not applied", elapsed)
	}
}

func TestDialTimeoutError(t *testing.T) {
	// A listener with a full backlog is hard to fake portably; an address
	// that refuses quickly at least drives the error path through
	// DialOptions.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close() // nothing listens here now
	if _, err := DialOptions(addr, Options{DialTimeout: time.Second}); err == nil {
		t.Fatal("DialOptions succeeded against a closed port")
	}
}

func TestOpsAfterCloseFail(t *testing.T) {
	srv := newStubServer(t, serveProtocol)
	c, err := Dial(srv.addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get("k"); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Get after Close = %v, want net.ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestBackoffIsBoundedAndGrows(t *testing.T) {
	c := &Client{opts: Options{RetryBackoff: 10 * time.Millisecond}.withDefaults()}
	prevMin := time.Duration(0)
	for attempt := 0; attempt < 12; attempt++ {
		base := c.opts.RetryBackoff << attempt
		if base > maxRetryBackoff || base <= 0 {
			base = maxRetryBackoff
		}
		for i := 0; i < 20; i++ {
			d := c.backoff(attempt)
			if d < base || d > base+base/2+1 {
				t.Fatalf("backoff(%d) = %v outside [%v, %v]", attempt, d, base, base+base/2)
			}
		}
		if base < prevMin {
			t.Fatalf("backoff base shrank: %v after %v", base, prevMin)
		}
		prevMin = base
	}
}
