// Pipelined-mode hardening tests against a scriptable binary stub
// server, mirroring retry_test.go for the text path.
package client

import (
	"bufio"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"s3fifo/internal/proto"
)

// serveBinary answers every request with status st (echoing ids), so
// tests can provoke specific client-side paths.
func serveBinary(st proto.Status, msg []byte) func(conn net.Conn, nth int64) {
	return func(conn net.Conn, _ int64) {
		defer conn.Close()
		r := bufio.NewReader(conn)
		hdr := make([]byte, proto.HeaderLen)
		for {
			if _, err := io.ReadFull(r, hdr); err != nil {
				return
			}
			h, err := proto.ParseRequestHeader(hdr)
			if err != nil {
				return
			}
			if _, err := r.Discard(h.KeyLen + int(h.ValueLen)); err != nil {
				return
			}
			resp := proto.AppendResponse(nil, st, h.ID, msg)
			if _, err := conn.Write(resp); err != nil {
				return
			}
		}
	}
}

func TestPipelinedServerErrorNotRetried(t *testing.T) {
	srv := newStubServer(t, serveBinary(proto.StatusErr, []byte("synthetic failure")))
	c, err := DialOptions(srv.addr(), Options{
		Pipeline:     4,
		Retries:      5,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, _, err = c.Get("k")
	var se *ServerError
	if !errors.As(err, &se) || se.Reason != "synthetic failure" {
		t.Fatalf("err = %v, want ServerError(synthetic failure)", err)
	}
	if got := srv.conns.Load(); got != 1 {
		t.Errorf("server saw %d connections; server errors must not redial", got)
	}
}

func TestPipelinedRetriesAfterDroppedConn(t *testing.T) {
	srv := newStubServer(t, func(conn net.Conn, nth int64) {
		if nth <= 2 {
			buf := make([]byte, 256)
			conn.Read(buf)
			conn.Close()
			return
		}
		serveBinary(proto.StatusMiss, nil)(conn, nth)
	})
	c, err := DialOptions(srv.addr(), Options{
		Pipeline:     4,
		Retries:      3,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, ok, err := c.Get("k"); err != nil || ok {
		t.Fatalf("Get through flaky server = %v, %v; want miss, nil", ok, err)
	}
	if got := srv.conns.Load(); got != 3 {
		t.Errorf("server saw %d connections, want 3 (1 dial + 2 redials)", got)
	}
}

func TestPipelinedOpsAfterCloseFail(t *testing.T) {
	srv := newStubServer(t, serveBinary(proto.StatusMiss, nil))
	c, err := DialOptions(srv.addr(), Options{Pipeline: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get("k"); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Get after Close = %v, want net.ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestPipelinedOpTimeoutFailsConnection(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	srv := newStubServer(t, func(conn net.Conn, _ int64) {
		defer conn.Close()
		<-block // swallow requests, answer nothing
	})
	c, err := DialOptions(srv.addr(), Options{
		Pipeline:  4,
		OpTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if _, _, err := c.Get("k"); err == nil {
		t.Fatal("Get returned against a silent server")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("timeout took %v; OpTimeout not applied to pipelined ops", elapsed)
	}
}

func TestPipelineImpliesBinary(t *testing.T) {
	opts := Options{Pipeline: 8}.withDefaults()
	if !opts.Binary {
		t.Fatal("Pipeline > 0 must imply the binary protocol")
	}
}

func TestPipelinedRejectsOversizeKeyLocally(t *testing.T) {
	srv := newStubServer(t, serveBinary(proto.StatusOK, nil))
	c, err := DialOptions(srv.addr(), Options{Pipeline: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	long := make([]byte, proto.MaxKeyLen+1)
	for i := range long {
		long[i] = 'k'
	}
	var se *ServerError
	if _, _, err := c.Get(string(long)); !errors.As(err, &se) {
		t.Fatalf("oversize key Get = %v, want ServerError", err)
	}
	if _, err := c.Set("", []byte("v")); !errors.As(err, &se) {
		t.Fatalf("empty key Set = %v, want ServerError", err)
	}
}
