// Package client is the Go client for the s3cached cache server
// (cmd/s3cached, internal/server). It speaks the server's compact text
// protocol over a single TCP connection; the client is safe for
// concurrent use (requests are serialized on the connection, like a
// classic memcached text-protocol client).
//
// The client is hardened for flaky networks: dial and per-operation
// timeouts, plus bounded retry with jittered exponential backoff
// (Options.Retries). An I/O failure mid-operation drops the connection
// and redials before the next attempt — the protocol has no framing to
// resynchronize a half-read response. Server-reported protocol errors
// (*ServerError) are never retried: the server got the request and
// rejected it, so retrying cannot change the answer.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Defaults for Options zero values.
const (
	defaultDialTimeout  = 5 * time.Second
	defaultRetryBackoff = 10 * time.Millisecond
	maxRetryBackoff     = time.Second
)

// Options tunes the client's network behavior. The zero value gives a
// 5s dial timeout, no per-operation deadline, and no retries — the
// behavior of Dial.
type Options struct {
	// DialTimeout bounds connection establishment (and re-dials during
	// retry). 0 means 5s; negative means no timeout.
	DialTimeout time.Duration
	// OpTimeout, when positive, is a deadline applied to each operation
	// attempt (write + response read).
	OpTimeout time.Duration
	// Retries is how many additional attempts an operation gets after an
	// I/O failure. Each retry redials the server. Protocol errors
	// (*ServerError) are never retried.
	Retries int
	// RetryBackoff is the base delay before the first retry; it doubles
	// per attempt (capped at 1s) with up to 50% random jitter so a fleet
	// of clients doesn't retry in lockstep. 0 means 10ms.
	RetryBackoff time.Duration
}

func (o Options) withDefaults() Options {
	if o.DialTimeout == 0 {
		o.DialTimeout = defaultDialTimeout
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = defaultRetryBackoff
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	return o
}

// ServerError is a protocol-level rejection reported by the server (an
// "ERROR <reason>" line). The request was delivered and refused, so the
// client never retries these.
type ServerError struct {
	Reason string
}

func (e *ServerError) Error() string { return "client: server error: " + e.Reason }

// Client is a connection to an s3cached server. Create one with Dial or
// DialOptions.
type Client struct {
	addr string
	opts Options

	mu     sync.Mutex
	conn   net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
	closed bool
}

// Dial connects to an s3cached server at addr ("host:port") with default
// Options.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, Options{})
}

// DialOptions connects to an s3cached server at addr with explicit
// network options.
func DialOptions(addr string, opts Options) (*Client, error) {
	c := &Client{addr: addr, opts: opts.withDefaults()}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.redialLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// redialLocked (re)establishes the connection. Callers hold c.mu.
func (c *Client) redialLocked() error {
	timeout := c.opts.DialTimeout
	if timeout < 0 {
		timeout = 0 // net.DialTimeout: 0 means no timeout
	}
	conn, err := net.DialTimeout("tcp", c.addr, timeout)
	if err != nil {
		return err
	}
	c.conn = conn
	c.r = bufio.NewReaderSize(conn, 16<<10)
	c.w = bufio.NewWriterSize(conn, 16<<10)
	return nil
}

// teardownLocked drops a connection whose protocol state is unknown.
func (c *Client) teardownLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// backoff returns the jittered delay before retry attempt (0-based).
func (c *Client) backoff(attempt int) time.Duration {
	d := c.opts.RetryBackoff << attempt
	if d > maxRetryBackoff || d <= 0 {
		d = maxRetryBackoff
	}
	// Up to +50% jitter: desynchronizes a fleet retrying the same outage.
	return d + time.Duration(rand.Int64N(int64(d)/2+1))
}

// do runs one operation attempt-loop. op writes a request and parses the
// response on a healthy connection. I/O errors tear the connection down
// and retry (redialing) up to opts.Retries times; *ServerError returns
// immediately.
func (c *Client) do(op func() error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var err error
	for attempt := 0; ; attempt++ {
		if c.closed {
			return net.ErrClosed
		}
		err = nil
		if c.conn == nil {
			err = c.redialLocked()
		}
		if err == nil {
			if c.opts.OpTimeout > 0 {
				c.conn.SetDeadline(time.Now().Add(c.opts.OpTimeout))
			}
			err = op()
		}
		if err == nil {
			return nil
		}
		var se *ServerError
		if errors.As(err, &se) {
			return err // delivered and rejected: retrying cannot help
		}
		// I/O failure: the response stream may be mid-frame, so the
		// connection cannot be reused.
		c.teardownLocked()
		if attempt >= c.opts.Retries {
			return err
		}
		delay := c.backoff(attempt)
		c.mu.Unlock()
		time.Sleep(delay)
		c.mu.Lock()
	}
}

// Close terminates the connection. Further operations return
// net.ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.conn == nil {
		return nil
	}
	fmt.Fprintf(c.w, "quit\r\n")
	c.w.Flush()
	err := c.conn.Close()
	c.conn = nil
	return err
}

func (c *Client) readLine() (string, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// errFor converts an ERROR response line into a *ServerError.
func errFor(line string) error {
	return &ServerError{Reason: strings.TrimPrefix(line, "ERROR ")}
}

// Get fetches key. The second result is false on a cache miss.
func (c *Client) Get(key string) ([]byte, bool, error) {
	var value []byte
	var ok bool
	err := c.do(func() error {
		value, ok = nil, false
		if _, err := fmt.Fprintf(c.w, "get %s\r\n", key); err != nil {
			return err
		}
		if err := c.w.Flush(); err != nil {
			return err
		}
		line, err := c.readLine()
		if err != nil {
			return err
		}
		switch {
		case line == "END":
			return nil
		case strings.HasPrefix(line, "ERROR"):
			return errFor(line)
		case strings.HasPrefix(line, "VALUE "):
			fields := strings.Fields(line)
			if len(fields) != 3 {
				return fmt.Errorf("client: malformed VALUE line %q", line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return fmt.Errorf("client: bad length in %q", line)
			}
			value = make([]byte, n)
			if _, err := io.ReadFull(c.r, value); err != nil {
				return err
			}
			// Consume the value terminator and the END line.
			if _, err := c.readLine(); err != nil {
				return err
			}
			end, err := c.readLine()
			if err != nil {
				return err
			}
			if end != "END" {
				return fmt.Errorf("client: expected END, got %q", end)
			}
			ok = true
			return nil
		default:
			return fmt.Errorf("client: unexpected response %q", line)
		}
	})
	if err != nil {
		return nil, false, err
	}
	return value, ok, nil
}

// Set stores value under key. It returns false when the server declined
// to store the entry (e.g. larger than the cache).
//
// Retry caveat: a retried Set may apply twice when the first response
// was lost after the server stored the entry. Set is idempotent per
// (key, value), so the only observable effect is eviction-order noise.
func (c *Client) Set(key string, value []byte) (bool, error) {
	return c.set(key, value, 0)
}

// SetWithTTL stores value with a time-to-live (rounded up to seconds).
func (c *Client) SetWithTTL(key string, value []byte, ttl time.Duration) (bool, error) {
	return c.set(key, value, ttl)
}

func (c *Client) set(key string, value []byte, ttl time.Duration) (bool, error) {
	var stored bool
	err := c.do(func() error {
		if ttl > 0 {
			secs := int((ttl + time.Second - 1) / time.Second)
			fmt.Fprintf(c.w, "set %s %d %d\r\n", key, len(value), secs)
		} else {
			fmt.Fprintf(c.w, "set %s %d\r\n", key, len(value))
		}
		c.w.Write(value)
		c.w.WriteString("\r\n")
		if err := c.w.Flush(); err != nil {
			return err
		}
		line, err := c.readLine()
		if err != nil {
			return err
		}
		switch {
		case line == "STORED":
			stored = true
			return nil
		case line == "NOT_STORED":
			stored = false
			return nil
		case strings.HasPrefix(line, "ERROR"):
			return errFor(line)
		default:
			return fmt.Errorf("client: unexpected response %q", line)
		}
	})
	if err != nil {
		return false, err
	}
	return stored, nil
}

// Delete removes key. The result reports whether the key existed.
func (c *Client) Delete(key string) (bool, error) {
	var existed bool
	err := c.do(func() error {
		fmt.Fprintf(c.w, "delete %s\r\n", key)
		if err := c.w.Flush(); err != nil {
			return err
		}
		line, err := c.readLine()
		if err != nil {
			return err
		}
		switch {
		case line == "DELETED":
			existed = true
			return nil
		case line == "NOT_FOUND":
			existed = false
			return nil
		case strings.HasPrefix(line, "ERROR"):
			return errFor(line)
		default:
			return fmt.Errorf("client: unexpected response %q", line)
		}
	})
	if err != nil {
		return false, err
	}
	return existed, nil
}

// ServerStats is the typed view of the server's counters. Flash fields
// are zero when the server runs without a flash tier.
type ServerStats struct {
	Engine            string // serving engine ("policy" or "concurrent")
	Hits              uint64 // DRAMHits + FlashHits
	Misses            uint64
	Sets              uint64
	Evictions         uint64
	Expired           uint64
	DRAMHits          uint64
	FlashHits         uint64
	FlashBytesWritten uint64
	FlashGCBytes      uint64
	FlashSegments     uint64
	FlashEntries      uint64
	Demotions         uint64
	DemotionsDeclined uint64
	Promotions        uint64
	Entries           uint64
	Bytes             uint64
	Capacity          uint64

	// Flash health (DESIGN.md §10): breaker state and degraded-mode
	// accounting.
	FlashErrors          uint64
	FlashDegraded        bool
	FlashBreakerTrips    uint64
	FlashBreakerRestores uint64
	DemotionsDegraded    uint64

	// Server process stats (uptime and connection/command counters).
	UptimeSeconds       uint64
	CurrConnections     uint64
	TotalConnections    uint64
	RejectedConnections uint64
	AcceptRetries       uint64
	CmdGet              uint64
	CmdSet              uint64
	CmdDelete           uint64
}

// ServerStats fetches the server's counters into a typed struct. Stat
// names the client does not know are ignored, so old clients keep
// working against newer servers and vice versa.
func (c *Client) ServerStats() (ServerStats, error) {
	raw, err := c.StatsRaw()
	if err != nil {
		return ServerStats{}, err
	}
	m := map[string]uint64{}
	for name, v := range raw {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			m[name] = n
		}
	}
	return ServerStats{
		Engine:            raw["engine"],
		Hits:              m["hits"],
		Misses:            m["misses"],
		Sets:              m["sets"],
		Evictions:         m["evictions"],
		Expired:           m["expired"],
		DRAMHits:          m["dram_hits"],
		FlashHits:         m["flash_hits"],
		FlashBytesWritten: m["flash_bytes_written"],
		FlashGCBytes:      m["flash_gc_bytes"],
		FlashSegments:     m["flash_segments"],
		FlashEntries:      m["flash_entries"],
		Demotions:         m["demotions"],
		DemotionsDeclined: m["demotions_declined"],
		Promotions:        m["promotions"],
		Entries:           m["entries"],
		Bytes:             m["bytes"],
		Capacity:          m["capacity"],

		FlashErrors:          m["flash_errors"],
		FlashDegraded:        m["flash_degraded"] != 0,
		FlashBreakerTrips:    m["flash_breaker_trips"],
		FlashBreakerRestores: m["flash_breaker_restores"],
		DemotionsDegraded:    m["demotions_degraded"],

		UptimeSeconds:       m["uptime_seconds"],
		CurrConnections:     m["curr_connections"],
		TotalConnections:    m["total_connections"],
		RejectedConnections: m["rejected_connections"],
		AcceptRetries:       m["accept_retries"],
		CmdGet:              m["cmd_get"],
		CmdSet:              m["cmd_set"],
		CmdDelete:           m["cmd_delete"],
	}, nil
}

// Stats fetches the server's numeric counters as a name -> value map.
// Stats whose values are not unsigned integers (e.g. "engine") are
// skipped, so old clients keep working as servers grow new stat lines;
// use StatsRaw or ServerStats for those.
func (c *Client) Stats() (map[string]uint64, error) {
	raw, err := c.StatsRaw()
	if err != nil {
		return nil, err
	}
	out := map[string]uint64{}
	for name, v := range raw {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			out[name] = n
		}
	}
	return out, nil
}

// StatsRaw fetches every STAT line verbatim as a name -> value map.
func (c *Client) StatsRaw() (map[string]string, error) {
	var out map[string]string
	err := c.do(func() error {
		fmt.Fprintf(c.w, "stats\r\n")
		if err := c.w.Flush(); err != nil {
			return err
		}
		out = map[string]string{}
		for {
			line, err := c.readLine()
			if err != nil {
				return err
			}
			if line == "END" {
				return nil
			}
			if strings.HasPrefix(line, "ERROR") {
				return errFor(line)
			}
			fields := strings.Fields(line)
			if len(fields) != 3 || fields[0] != "STAT" {
				return fmt.Errorf("client: malformed stat line %q", line)
			}
			out[fields[1]] = fields[2]
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
