// Package client is the Go client for the s3cached cache server
// (cmd/s3cached, internal/server). It speaks the server's compact text
// protocol over a single TCP connection; the client is safe for
// concurrent use (requests are serialized on the connection, like a
// classic memcached text-protocol client).
package client

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Client is a connection to an s3cached server. Create one with Dial.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to an s3cached server at addr ("host:port").
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 16<<10),
		w:    bufio.NewWriterSize(conn, 16<<10),
	}, nil
}

// Close terminates the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	fmt.Fprintf(c.w, "quit\r\n")
	c.w.Flush()
	return c.conn.Close()
}

func (c *Client) readLine() (string, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// errFor converts an ERROR response line into an error.
func errFor(line string) error {
	return fmt.Errorf("client: server error: %s", strings.TrimPrefix(line, "ERROR "))
}

// Get fetches key. The second result is false on a cache miss.
func (c *Client) Get(key string) ([]byte, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := fmt.Fprintf(c.w, "get %s\r\n", key); err != nil {
		return nil, false, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, false, err
	}
	line, err := c.readLine()
	if err != nil {
		return nil, false, err
	}
	switch {
	case line == "END":
		return nil, false, nil
	case strings.HasPrefix(line, "ERROR"):
		return nil, false, errFor(line)
	case strings.HasPrefix(line, "VALUE "):
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, false, fmt.Errorf("client: malformed VALUE line %q", line)
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n < 0 {
			return nil, false, fmt.Errorf("client: bad length in %q", line)
		}
		value := make([]byte, n)
		if _, err := io.ReadFull(c.r, value); err != nil {
			return nil, false, err
		}
		// Consume the value terminator and the END line.
		if _, err := c.readLine(); err != nil {
			return nil, false, err
		}
		end, err := c.readLine()
		if err != nil {
			return nil, false, err
		}
		if end != "END" {
			return nil, false, fmt.Errorf("client: expected END, got %q", end)
		}
		return value, true, nil
	default:
		return nil, false, fmt.Errorf("client: unexpected response %q", line)
	}
}

// Set stores value under key. It returns false when the server declined
// to store the entry (e.g. larger than the cache).
func (c *Client) Set(key string, value []byte) (bool, error) {
	return c.set(key, value, 0)
}

// SetWithTTL stores value with a time-to-live (rounded up to seconds).
func (c *Client) SetWithTTL(key string, value []byte, ttl time.Duration) (bool, error) {
	return c.set(key, value, ttl)
}

func (c *Client) set(key string, value []byte, ttl time.Duration) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ttl > 0 {
		secs := int((ttl + time.Second - 1) / time.Second)
		fmt.Fprintf(c.w, "set %s %d %d\r\n", key, len(value), secs)
	} else {
		fmt.Fprintf(c.w, "set %s %d\r\n", key, len(value))
	}
	c.w.Write(value)
	c.w.WriteString("\r\n")
	if err := c.w.Flush(); err != nil {
		return false, err
	}
	line, err := c.readLine()
	if err != nil {
		return false, err
	}
	switch {
	case line == "STORED":
		return true, nil
	case line == "NOT_STORED":
		return false, nil
	case strings.HasPrefix(line, "ERROR"):
		return false, errFor(line)
	default:
		return false, fmt.Errorf("client: unexpected response %q", line)
	}
}

// Delete removes key. The result reports whether the key existed.
func (c *Client) Delete(key string) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fmt.Fprintf(c.w, "delete %s\r\n", key)
	if err := c.w.Flush(); err != nil {
		return false, err
	}
	line, err := c.readLine()
	if err != nil {
		return false, err
	}
	switch {
	case line == "DELETED":
		return true, nil
	case line == "NOT_FOUND":
		return false, nil
	case strings.HasPrefix(line, "ERROR"):
		return false, errFor(line)
	default:
		return false, fmt.Errorf("client: unexpected response %q", line)
	}
}

// ServerStats is the typed view of the server's counters. Flash fields
// are zero when the server runs without a flash tier.
type ServerStats struct {
	Engine            string // serving engine ("policy" or "concurrent")
	Hits              uint64 // DRAMHits + FlashHits
	Misses            uint64
	Sets              uint64
	Evictions         uint64
	Expired           uint64
	DRAMHits          uint64
	FlashHits         uint64
	FlashBytesWritten uint64
	FlashGCBytes      uint64
	FlashSegments     uint64
	FlashEntries      uint64
	Demotions         uint64
	DemotionsDeclined uint64
	Promotions        uint64
	Entries           uint64
	Bytes             uint64
	Capacity          uint64

	// Server process stats (uptime and connection/command counters).
	UptimeSeconds    uint64
	CurrConnections  uint64
	TotalConnections uint64
	CmdGet           uint64
	CmdSet           uint64
	CmdDelete        uint64
}

// ServerStats fetches the server's counters into a typed struct. Stat
// names the client does not know are ignored, so old clients keep
// working against newer servers and vice versa.
func (c *Client) ServerStats() (ServerStats, error) {
	raw, err := c.StatsRaw()
	if err != nil {
		return ServerStats{}, err
	}
	m := map[string]uint64{}
	for name, v := range raw {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			m[name] = n
		}
	}
	return ServerStats{
		Engine:            raw["engine"],
		Hits:              m["hits"],
		Misses:            m["misses"],
		Sets:              m["sets"],
		Evictions:         m["evictions"],
		Expired:           m["expired"],
		DRAMHits:          m["dram_hits"],
		FlashHits:         m["flash_hits"],
		FlashBytesWritten: m["flash_bytes_written"],
		FlashGCBytes:      m["flash_gc_bytes"],
		FlashSegments:     m["flash_segments"],
		FlashEntries:      m["flash_entries"],
		Demotions:         m["demotions"],
		DemotionsDeclined: m["demotions_declined"],
		Promotions:        m["promotions"],
		Entries:           m["entries"],
		Bytes:             m["bytes"],
		Capacity:          m["capacity"],
		UptimeSeconds:     m["uptime_seconds"],
		CurrConnections:   m["curr_connections"],
		TotalConnections:  m["total_connections"],
		CmdGet:            m["cmd_get"],
		CmdSet:            m["cmd_set"],
		CmdDelete:         m["cmd_delete"],
	}, nil
}

// Stats fetches the server's numeric counters as a name -> value map.
// Stats whose values are not unsigned integers (e.g. "engine") are
// skipped, so old clients keep working as servers grow new stat lines;
// use StatsRaw or ServerStats for those.
func (c *Client) Stats() (map[string]uint64, error) {
	raw, err := c.StatsRaw()
	if err != nil {
		return nil, err
	}
	out := map[string]uint64{}
	for name, v := range raw {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			out[name] = n
		}
	}
	return out, nil
}

// StatsRaw fetches every STAT line verbatim as a name -> value map.
func (c *Client) StatsRaw() (map[string]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fmt.Fprintf(c.w, "stats\r\n")
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	out := map[string]string{}
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if line == "END" {
			return out, nil
		}
		if strings.HasPrefix(line, "ERROR") {
			return nil, errFor(line)
		}
		fields := strings.Fields(line)
		if len(fields) != 3 || fields[0] != "STAT" {
			return nil, fmt.Errorf("client: malformed stat line %q", line)
		}
		out[fields[1]] = fields[2]
	}
}
