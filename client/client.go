// Package client is the Go client for the s3cached cache server
// (cmd/s3cached, internal/server). By default it speaks the server's
// compact text protocol over a single TCP connection; the client is safe
// for concurrent use (requests are serialized on the connection, like a
// classic memcached text-protocol client).
//
// Two faster wire modes share the same API. Options.Binary switches the
// connection to the length-prefixed binary protocol (internal/proto):
// same request/response discipline, no text parsing on either end.
// Options.Pipeline additionally enables pipelined mode: up to Pipeline
// requests in flight on one connection, matched to responses by request
// id, with writes from concurrent goroutines coalesced into shared
// flushes. A pipelined client turns N goroutines hammering one
// connection into one batched syscall stream in each direction — drive
// it concurrently; a single synchronous caller gains only the binary
// framing.
//
// The client is hardened for flaky networks: dial and per-operation
// timeouts, plus bounded retry with jittered exponential backoff
// (Options.Retries). An I/O failure mid-operation drops the connection
// and redials before the next attempt — in pipelined mode every
// operation in flight on the failed connection is failed (and retried by
// its own caller, up to Options.Retries). Server-reported protocol
// errors (*ServerError) are never retried: the server got the request
// and rejected it, so retrying cannot change the answer.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"s3fifo/internal/proto"
)

// Defaults for Options zero values.
const (
	defaultDialTimeout  = 5 * time.Second
	defaultRetryBackoff = 10 * time.Millisecond
	maxRetryBackoff     = time.Second
)

// Options tunes the client's network behavior. The zero value gives a
// 5s dial timeout, no per-operation deadline, and no retries — the
// behavior of Dial.
type Options struct {
	// DialTimeout bounds connection establishment (and re-dials during
	// retry). 0 means 5s; negative means no timeout.
	DialTimeout time.Duration
	// OpTimeout, when positive, is a deadline applied to each operation
	// attempt (write + response read).
	OpTimeout time.Duration
	// Retries is how many additional attempts an operation gets after an
	// I/O failure. Each retry redials the server. Protocol errors
	// (*ServerError) are never retried.
	Retries int
	// RetryBackoff is the base delay before the first retry; it doubles
	// per attempt (capped at 1s) with up to 50% random jitter so a fleet
	// of clients doesn't retry in lockstep. 0 means 10ms.
	RetryBackoff time.Duration
	// Binary selects the length-prefixed binary protocol (internal/proto)
	// instead of the text protocol. The server auto-detects it on the
	// first byte.
	Binary bool
	// Pipeline, when positive, enables pipelined mode over the binary
	// protocol (implying Binary): up to Pipeline requests in flight on
	// the connection, matched by request id. Operations from concurrent
	// goroutines share the connection instead of serializing on it.
	Pipeline int
}

func (o Options) withDefaults() Options {
	if o.DialTimeout == 0 {
		o.DialTimeout = defaultDialTimeout
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = defaultRetryBackoff
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.Pipeline < 0 {
		o.Pipeline = 0
	}
	if o.Pipeline > 0 {
		o.Binary = true
	}
	return o
}

// ServerError is a protocol-level rejection reported by the server (an
// "ERROR <reason>" line). The request was delivered and refused, so the
// client never retries these.
type ServerError struct {
	Reason string
}

func (e *ServerError) Error() string { return "client: server error: " + e.Reason }

// Client is a connection to an s3cached server. Create one with Dial or
// DialOptions.
type Client struct {
	addr string
	opts Options

	pipe *pipe // non-nil in pipelined mode; owns the connection instead

	mu     sync.Mutex
	conn   net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
	closed bool

	hdr [proto.HeaderLen]byte // response-header scratch (binary sync mode)
}

// Dial connects to an s3cached server at addr ("host:port") with default
// Options.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, Options{})
}

// DialOptions connects to an s3cached server at addr with explicit
// network options.
func DialOptions(addr string, opts Options) (*Client, error) {
	c := &Client{addr: addr, opts: opts.withDefaults()}
	if c.opts.Pipeline > 0 {
		c.pipe = newPipe(c)
		if err := c.pipe.dial(); err != nil {
			return nil, err
		}
		return c, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.redialLocked(); err != nil {
		return nil, err
	}
	return c, nil
}

// dialTCP dials addr and rejects TCP self-connection: dialing a freed
// ephemeral port (a cache node that just went down) can make the kernel
// pick that same port as the connection's source, and the
// simultaneous-open handshake then "succeeds" against ourselves — an
// established connection with no server behind it, which would hang
// until a keepalive kills it instead of failing fast.
func dialTCP(addr string, timeout time.Duration) (net.Conn, error) {
	if timeout < 0 {
		timeout = 0 // net.DialTimeout: 0 means no timeout
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if local, remote := conn.LocalAddr(), conn.RemoteAddr(); local.String() == remote.String() {
		conn.Close()
		return nil, &net.OpError{Op: "dial", Net: "tcp", Addr: remote,
			Err: errors.New("refusing self-connection")}
	}
	return conn, nil
}

// redialLocked (re)establishes the connection. Callers hold c.mu.
func (c *Client) redialLocked() error {
	conn, err := dialTCP(c.addr, c.opts.DialTimeout)
	if err != nil {
		return err
	}
	c.conn = conn
	c.r = bufio.NewReaderSize(conn, 16<<10)
	c.w = bufio.NewWriterSize(conn, 16<<10)
	return nil
}

// teardownLocked drops a connection whose protocol state is unknown.
func (c *Client) teardownLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// backoff returns the jittered delay before retry attempt (0-based).
func (c *Client) backoff(attempt int) time.Duration {
	d := c.opts.RetryBackoff << attempt
	if d > maxRetryBackoff || d <= 0 {
		d = maxRetryBackoff
	}
	// Up to +50% jitter: desynchronizes a fleet retrying the same outage.
	return d + time.Duration(rand.Int64N(int64(d)/2+1))
}

// do runs one operation attempt-loop. op writes a request and parses the
// response on a healthy connection. I/O errors tear the connection down
// and retry (redialing) up to opts.Retries times; *ServerError returns
// immediately.
func (c *Client) do(op func() error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var err error
	for attempt := 0; ; attempt++ {
		if c.closed {
			return net.ErrClosed
		}
		err = nil
		if c.conn == nil {
			err = c.redialLocked()
		}
		if err == nil {
			if c.opts.OpTimeout > 0 {
				c.conn.SetDeadline(time.Now().Add(c.opts.OpTimeout))
			}
			err = op()
		}
		if err == nil {
			return nil
		}
		var se *ServerError
		if errors.As(err, &se) {
			return err // delivered and rejected: retrying cannot help
		}
		// I/O failure: the response stream may be mid-frame, so the
		// connection cannot be reused.
		c.teardownLocked()
		if attempt >= c.opts.Retries {
			return err
		}
		delay := c.backoff(attempt)
		c.mu.Unlock()
		time.Sleep(delay)
		c.mu.Lock()
	}
}

// Close terminates the connection. Further operations return
// net.ErrClosed.
func (c *Client) Close() error {
	if c.pipe != nil {
		return c.pipe.close()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.conn == nil {
		return nil
	}
	if !c.opts.Binary {
		// Only the text protocol has a parting command; a binary
		// connection just closes.
		fmt.Fprintf(c.w, "quit\r\n")
		c.w.Flush()
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

func (c *Client) readLine() (string, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// errFor converts an ERROR response line into a *ServerError.
func errFor(line string) error {
	return &ServerError{Reason: strings.TrimPrefix(line, "ERROR ")}
}

// binRoundTrip writes one binary request and reads its response on the
// synchronous (non-pipelined) connection. Callers hold c.mu via do().
// An error-status response is returned as a *ServerError; everything
// else surfaces as (status, value).
func (c *Client) binRoundTrip(op proto.Op, key string, value []byte, ttl uint32) (proto.Status, []byte, error) {
	buf := proto.GetBuf()
	*buf = proto.AppendRequest(*buf, op, ttl, 0, key, value)
	_, err := c.w.Write(*buf)
	proto.PutBuf(buf)
	if err != nil {
		return 0, nil, err
	}
	if err := c.w.Flush(); err != nil {
		return 0, nil, err
	}
	if _, err := io.ReadFull(c.r, c.hdr[:]); err != nil {
		return 0, nil, err
	}
	h, err := proto.ParseResponseHeader(c.hdr[:])
	if err != nil {
		return 0, nil, err
	}
	var resp []byte
	if h.ValueLen > 0 {
		resp = make([]byte, h.ValueLen)
		if _, err := io.ReadFull(c.r, resp); err != nil {
			return 0, nil, err
		}
	}
	if h.Status == proto.StatusErr {
		return 0, nil, &ServerError{Reason: string(resp)}
	}
	return h.Status, resp, nil
}

// checkKey rejects keys the binary framing cannot carry before anything
// hits the wire. The error is a *ServerError (the server would refuse
// the request), so the retry loop does not waste attempts on it.
func checkKey(key string) error {
	if len(key) > proto.MaxKeyLen {
		return &ServerError{Reason: "key too long"}
	}
	if len(key) == 0 {
		return &ServerError{Reason: "empty key"}
	}
	return nil
}

// Get fetches key. The second result is false on a cache miss.
func (c *Client) Get(key string) ([]byte, bool, error) {
	if c.pipe != nil {
		return c.pipe.Get(key)
	}
	if c.opts.Binary {
		if err := checkKey(key); err != nil {
			return nil, false, err
		}
		var value []byte
		var ok bool
		err := c.do(func() error {
			st, v, err := c.binRoundTrip(proto.OpGet, key, nil, 0)
			if err != nil {
				return err
			}
			value, ok = v, st == proto.StatusOK
			return nil
		})
		if err != nil {
			return nil, false, err
		}
		return value, ok, nil
	}
	var value []byte
	var ok bool
	err := c.do(func() error {
		value, ok = nil, false
		if _, err := fmt.Fprintf(c.w, "get %s\r\n", key); err != nil {
			return err
		}
		if err := c.w.Flush(); err != nil {
			return err
		}
		line, err := c.readLine()
		if err != nil {
			return err
		}
		switch {
		case line == "END":
			return nil
		case strings.HasPrefix(line, "ERROR"):
			return errFor(line)
		case strings.HasPrefix(line, "VALUE "):
			fields := strings.Fields(line)
			if len(fields) != 3 {
				return fmt.Errorf("client: malformed VALUE line %q", line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return fmt.Errorf("client: bad length in %q", line)
			}
			value = make([]byte, n)
			if _, err := io.ReadFull(c.r, value); err != nil {
				return err
			}
			// Consume the value terminator and the END line.
			if _, err := c.readLine(); err != nil {
				return err
			}
			end, err := c.readLine()
			if err != nil {
				return err
			}
			if end != "END" {
				return fmt.Errorf("client: expected END, got %q", end)
			}
			ok = true
			return nil
		default:
			return fmt.Errorf("client: unexpected response %q", line)
		}
	})
	if err != nil {
		return nil, false, err
	}
	return value, ok, nil
}

// Set stores value under key. It returns false when the server declined
// to store the entry (e.g. larger than the cache).
//
// Retry caveat: a retried Set may apply twice when the first response
// was lost after the server stored the entry. Set is idempotent per
// (key, value), so the only observable effect is eviction-order noise.
func (c *Client) Set(key string, value []byte) (bool, error) {
	return c.set(key, value, 0)
}

// SetWithTTL stores value with a time-to-live (rounded up to seconds).
func (c *Client) SetWithTTL(key string, value []byte, ttl time.Duration) (bool, error) {
	return c.set(key, value, ttl)
}

// ttlSeconds rounds a TTL up to whole seconds for the wire.
func ttlSeconds(ttl time.Duration) uint32 {
	if ttl <= 0 {
		return 0
	}
	secs := (ttl + time.Second - 1) / time.Second
	if secs > 1<<32-1 {
		return 1<<32 - 1
	}
	return uint32(secs)
}

func (c *Client) set(key string, value []byte, ttl time.Duration) (bool, error) {
	if c.pipe != nil {
		return c.pipe.Set(key, value, ttl)
	}
	if c.opts.Binary {
		if err := checkKey(key); err != nil {
			return false, err
		}
		if len(value) > proto.MaxValueLen {
			return false, &ServerError{Reason: "value too large"}
		}
		var stored bool
		err := c.do(func() error {
			st, _, err := c.binRoundTrip(proto.OpSet, key, value, ttlSeconds(ttl))
			if err != nil {
				return err
			}
			stored = st == proto.StatusOK
			return nil
		})
		return stored, err
	}
	var stored bool
	err := c.do(func() error {
		if ttl > 0 {
			secs := int((ttl + time.Second - 1) / time.Second)
			fmt.Fprintf(c.w, "set %s %d %d\r\n", key, len(value), secs)
		} else {
			fmt.Fprintf(c.w, "set %s %d\r\n", key, len(value))
		}
		c.w.Write(value)
		c.w.WriteString("\r\n")
		if err := c.w.Flush(); err != nil {
			return err
		}
		line, err := c.readLine()
		if err != nil {
			return err
		}
		switch {
		case line == "STORED":
			stored = true
			return nil
		case line == "NOT_STORED":
			stored = false
			return nil
		case strings.HasPrefix(line, "ERROR"):
			return errFor(line)
		default:
			return fmt.Errorf("client: unexpected response %q", line)
		}
	})
	if err != nil {
		return false, err
	}
	return stored, nil
}

// Delete removes key. The result reports whether the key existed.
func (c *Client) Delete(key string) (bool, error) {
	if c.pipe != nil {
		return c.pipe.Delete(key)
	}
	if c.opts.Binary {
		if err := checkKey(key); err != nil {
			return false, err
		}
		var existed bool
		err := c.do(func() error {
			st, _, err := c.binRoundTrip(proto.OpDelete, key, nil, 0)
			if err != nil {
				return err
			}
			existed = st == proto.StatusOK
			return nil
		})
		return existed, err
	}
	var existed bool
	err := c.do(func() error {
		fmt.Fprintf(c.w, "delete %s\r\n", key)
		if err := c.w.Flush(); err != nil {
			return err
		}
		line, err := c.readLine()
		if err != nil {
			return err
		}
		switch {
		case line == "DELETED":
			existed = true
			return nil
		case line == "NOT_FOUND":
			existed = false
			return nil
		case strings.HasPrefix(line, "ERROR"):
			return errFor(line)
		default:
			return fmt.Errorf("client: unexpected response %q", line)
		}
	})
	if err != nil {
		return false, err
	}
	return existed, nil
}

// ServerStats is the typed view of the server's counters. Flash fields
// are zero when the server runs without a flash tier.
type ServerStats struct {
	Engine             string // serving engine ("policy" or "concurrent")
	NodeID             string // cluster node identity (s3cached -node-id); "" when unset
	TierKind           string // active second tier ("flash", "file", "remote"); "" when DRAM-only
	SnapshotAgeSeconds int64  // age of the snapshot last saved or restored; -1 when none
	Hits               uint64 // DRAMHits + FlashHits
	Misses             uint64
	Sets               uint64
	Evictions          uint64
	Expired            uint64
	DRAMHits           uint64
	FlashHits          uint64
	FlashBytesWritten  uint64
	FlashGCBytes       uint64
	FlashSegments      uint64
	FlashEntries       uint64
	Demotions          uint64
	DemotionsDeclined  uint64
	Promotions         uint64
	Entries            uint64
	Bytes              uint64
	Capacity           uint64

	// Flash health (DESIGN.md §10): breaker state and degraded-mode
	// accounting.
	FlashErrors          uint64
	FlashDegraded        bool
	FlashBreakerTrips    uint64
	FlashBreakerRestores uint64
	DemotionsDegraded    uint64

	// Server process stats (uptime and connection/command counters).
	UptimeSeconds       uint64
	CurrConnections     uint64
	TotalConnections    uint64
	RejectedConnections uint64
	AcceptRetries       uint64
	CmdGet              uint64
	CmdSet              uint64
	CmdDelete           uint64
	CmdGetx             uint64
	CmdSetx             uint64

	// Anti-stampede counters (DESIGN.md §14). Lease/coalesce fields are
	// zero when the server runs without WithAntiStampede.
	StaleServed        uint64 // expired values served within the grace window
	NegativeHits       uint64 // lookups answered from a negative tombstone
	NegativeSets       uint64 // negative fills recorded
	LeaseGrants        uint64
	LeaseRegrants      uint64
	LeaseRedeems       uint64
	LeaseRejects       uint64
	LeaseInvalidations uint64
	CoalescedWaits     uint64
	CoalesceOverflows  uint64
	CoalesceInflight   uint64
}

// ServerStats fetches the server's counters into a typed struct. Stat
// names the client does not know are ignored, so old clients keep
// working against newer servers and vice versa.
func (c *Client) ServerStats() (ServerStats, error) {
	raw, err := c.StatsRaw()
	if err != nil {
		return ServerStats{}, err
	}
	m := map[string]uint64{}
	for name, v := range raw {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			m[name] = n
		}
	}
	snapshotAge := int64(-1)
	if v, ok := raw["snapshot_age_seconds"]; ok {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			snapshotAge = n
		}
	}
	return ServerStats{
		Engine:             raw["engine"],
		NodeID:             raw["node_id"],
		TierKind:           raw["tier_kind"],
		SnapshotAgeSeconds: snapshotAge,
		Hits:               m["hits"],
		Misses:             m["misses"],
		Sets:               m["sets"],
		Evictions:          m["evictions"],
		Expired:            m["expired"],
		DRAMHits:           m["dram_hits"],
		FlashHits:          m["flash_hits"],
		FlashBytesWritten:  m["flash_bytes_written"],
		FlashGCBytes:       m["flash_gc_bytes"],
		FlashSegments:      m["flash_segments"],
		FlashEntries:       m["flash_entries"],
		Demotions:          m["demotions"],
		DemotionsDeclined:  m["demotions_declined"],
		Promotions:         m["promotions"],
		Entries:            m["entries"],
		Bytes:              m["bytes"],
		Capacity:           m["capacity"],

		FlashErrors:          m["flash_errors"],
		FlashDegraded:        m["flash_degraded"] != 0,
		FlashBreakerTrips:    m["flash_breaker_trips"],
		FlashBreakerRestores: m["flash_breaker_restores"],
		DemotionsDegraded:    m["demotions_degraded"],

		UptimeSeconds:       m["uptime_seconds"],
		CurrConnections:     m["curr_connections"],
		TotalConnections:    m["total_connections"],
		RejectedConnections: m["rejected_connections"],
		AcceptRetries:       m["accept_retries"],
		CmdGet:              m["cmd_get"],
		CmdSet:              m["cmd_set"],
		CmdDelete:           m["cmd_delete"],
		CmdGetx:             m["cmd_getx"],
		CmdSetx:             m["cmd_setx"],

		StaleServed:        m["stale_served"],
		NegativeHits:       m["negative_hits"],
		NegativeSets:       m["negative_sets"],
		LeaseGrants:        m["lease_grants"],
		LeaseRegrants:      m["lease_regrants"],
		LeaseRedeems:       m["lease_redeems"],
		LeaseRejects:       m["lease_rejects"],
		LeaseInvalidations: m["lease_invalidations"],
		CoalescedWaits:     m["coalesced_waits"],
		CoalesceOverflows:  m["coalesce_overflows"],
		CoalesceInflight:   m["coalesce_inflight"],
	}, nil
}

// Stats fetches the server's numeric counters as a name -> value map.
// Stats whose values are not unsigned integers (e.g. "engine") are
// skipped, so old clients keep working as servers grow new stat lines;
// use StatsRaw or ServerStats for those.
func (c *Client) Stats() (map[string]uint64, error) {
	raw, err := c.StatsRaw()
	if err != nil {
		return nil, err
	}
	out := map[string]uint64{}
	for name, v := range raw {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			out[name] = n
		}
	}
	return out, nil
}

// parseStatPayload parses "STAT <name> <value>" lines (the binary stats
// payload) into a map.
func parseStatPayload(payload []byte) (map[string]string, error) {
	out := map[string]string{}
	for _, line := range strings.Split(string(payload), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 || fields[0] != "STAT" {
			return nil, fmt.Errorf("client: malformed stat line %q", line)
		}
		out[fields[1]] = fields[2]
	}
	return out, nil
}

// Ping round-trips a no-op through the server — a liveness and latency
// probe. It requires the binary protocol (Options.Binary or Pipeline).
func (c *Client) Ping() error {
	if c.pipe != nil {
		_, _, err := c.pipe.roundTrip(proto.OpPing, "", nil, 0)
		return err
	}
	if !c.opts.Binary {
		return errors.New("client: Ping requires the binary protocol")
	}
	return c.do(func() error {
		_, _, err := c.binRoundTrip(proto.OpPing, "", nil, 0)
		return err
	})
}

// KeySample is one entry of a server's hot-key export (the keys
// command): a resident key and its access frequency at sampling time (0
// when the serving engine does not track per-key frequency).
type KeySample struct {
	Key  string
	Freq int
}

// parseKeysPayload parses "KEY <freq> <key>" lines (the keys command's
// payload) into samples, preserving server order (hottest first).
func parseKeysPayload(payload []byte) ([]KeySample, error) {
	var out []KeySample
	for _, line := range strings.Split(string(payload), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		fields := strings.SplitN(line, " ", 3)
		if len(fields) != 3 || fields[0] != "KEY" {
			return nil, fmt.Errorf("client: malformed key line %q", line)
		}
		freq, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("client: bad freq in %q", line)
		}
		out = append(out, KeySample{Key: fields[2], Freq: freq})
	}
	return out, nil
}

// Keys fetches up to max resident keys from the server, hottest first
// when the serving engine tracks per-key frequency — the feed cluster
// warm-up replays into a joining node. max <= 0 asks for the server's
// default sample size.
func (c *Client) Keys(max int) ([]KeySample, error) {
	ttl := uint32(0) // the binary frame carries max in the TTL field
	if max > 0 {
		ttl = uint32(max)
	}
	if c.pipe != nil {
		_, payload, err := c.pipe.roundTrip(proto.OpKeys, "", nil, ttl)
		if err != nil {
			return nil, err
		}
		return parseKeysPayload(payload)
	}
	if c.opts.Binary {
		var out []KeySample
		err := c.do(func() error {
			_, payload, err := c.binRoundTrip(proto.OpKeys, "", nil, ttl)
			if err != nil {
				return err
			}
			out, err = parseKeysPayload(payload)
			return err
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	var out []KeySample
	err := c.do(func() error {
		if max > 0 {
			fmt.Fprintf(c.w, "keys %d\r\n", max)
		} else {
			fmt.Fprintf(c.w, "keys\r\n")
		}
		if err := c.w.Flush(); err != nil {
			return err
		}
		out = nil
		for {
			line, err := c.readLine()
			if err != nil {
				return err
			}
			if line == "END" {
				return nil
			}
			if strings.HasPrefix(line, "ERROR") {
				return errFor(line)
			}
			fields := strings.SplitN(line, " ", 3)
			if len(fields) != 3 || fields[0] != "KEY" {
				return fmt.Errorf("client: malformed key line %q", line)
			}
			freq, err := strconv.Atoi(fields[1])
			if err != nil {
				return fmt.Errorf("client: bad freq in %q", line)
			}
			out = append(out, KeySample{Key: fields[2], Freq: freq})
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// StatsRaw fetches every STAT line verbatim as a name -> value map.
func (c *Client) StatsRaw() (map[string]string, error) {
	if c.pipe != nil {
		_, payload, err := c.pipe.roundTrip(proto.OpStats, "", nil, 0)
		if err != nil {
			return nil, err
		}
		return parseStatPayload(payload)
	}
	if c.opts.Binary {
		var out map[string]string
		err := c.do(func() error {
			_, payload, err := c.binRoundTrip(proto.OpStats, "", nil, 0)
			if err != nil {
				return err
			}
			out, err = parseStatPayload(payload)
			return err
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	var out map[string]string
	err := c.do(func() error {
		fmt.Fprintf(c.w, "stats\r\n")
		if err := c.w.Flush(); err != nil {
			return err
		}
		out = map[string]string{}
		for {
			line, err := c.readLine()
			if err != nil {
				return err
			}
			if line == "END" {
				return nil
			}
			if strings.HasPrefix(line, "ERROR") {
				return errFor(line)
			}
			fields := strings.Fields(line)
			if len(fields) != 3 || fields[0] != "STAT" {
				return fmt.Errorf("client: malformed stat line %q", line)
			}
			out[fields[1]] = fields[2]
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
