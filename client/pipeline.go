package client

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"time"

	"s3fifo/internal/proto"
)

// pipe is the pipelined-mode engine behind a Client: one connection,
// many requests in flight, matched to responses by request id. Writers
// append frames under the mutex and nudge a dedicated flusher goroutine,
// which yields once before flushing so every sender that is runnable at
// that moment gets to append first — a burst of N concurrent requests
// costs ~1 write syscall, not N. (Flushing inline from the last writer
// doesn't achieve this: responses wake the waiting senders one by one,
// so each would find itself alone in the write path and flush a single
// frame.) A dedicated reader goroutine (one per connection generation)
// delivers responses to waiting callers.
//
// Failure model: any I/O error on the connection fails every operation
// in flight on it (their bytes may be half-written or half-read; the
// request id matching cannot resynchronize a broken byte stream). Each
// failed caller then retries through its own attempt loop, redialing the
// shared connection at most once per generation.
type pipe struct {
	c        *Client
	window   chan struct{} // in-flight slots (capacity Options.Pipeline)
	flushReq chan struct{} // capacity 1: "the buffer has unflushed frames"

	mu      sync.Mutex
	conn    net.Conn
	w       *bufio.Writer
	gen     uint64 // bumped on every teardown; readLoop exits on mismatch
	idSeq   uint32 // last assigned request id; reseeded per generation (see redialLocked)
	pending map[uint32]*pcall // in-flight requests of the current generation
	closed  bool
}

// pcall is one in-flight request's rendezvous. Completion is signaled by
// a send on done (capacity 1) rather than a close so the struct and its
// channel are reusable: the pending-map ownership rules guarantee exactly
// one signaler per use, and the caller consumes the signal before the
// pcall goes back in the pool.
type pcall struct {
	done   chan struct{}
	status proto.Status
	value  []byte
	err    error
}

var pcallPool = sync.Pool{
	New: func() any { return &pcall{done: make(chan struct{}, 1)} },
}

func newPipe(c *Client) *pipe {
	p := &pipe{
		c:        c,
		window:   make(chan struct{}, c.opts.Pipeline),
		flushReq: make(chan struct{}, 1),
		pending:  make(map[uint32]*pcall),
	}
	go p.flushLoop()
	return p
}

// flushLoop ships batched frames. On each nudge it yields the processor
// once so every sender already runnable gets to append its frame, then
// flushes whatever accumulated. Senders signal after appending, so a
// frame can never be stranded: the signal that follows the last append
// guarantees a flush after it.
func (p *pipe) flushLoop() {
	for range p.flushReq {
		// Yield until the buffer stops growing: every yield gives workers
		// just woken by arriving responses a turn to append their next
		// frame, so batch sizes approach the in-flight window instead of
		// one frame per wakeup.
		prev := 0
		for {
			runtime.Gosched()
			p.mu.Lock()
			if p.closed {
				p.mu.Unlock()
				return
			}
			n := 0
			if p.w != nil {
				n = p.w.Buffered()
			}
			if n != prev {
				prev = n
				p.mu.Unlock()
				continue
			}
			if n > 0 {
				if err := p.w.Flush(); err != nil {
					p.failLocked(p.gen, err)
				}
			}
			p.mu.Unlock()
			break
		}
	}
}

// dial establishes the first connection (DialOptions path).
func (p *pipe) dial() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.redialLocked()
}

// redialLocked (re)connects and starts the generation's reader.
func (p *pipe) redialLocked() error {
	conn, err := dialTCP(p.c.addr, p.c.opts.DialTimeout)
	if err != nil {
		return err
	}
	p.conn = conn
	p.w = bufio.NewWriterSize(conn, 64<<10)
	p.gen++
	// Reseed the request-id sequence from the generation, spread across
	// the id space by the golden-ratio constant. Ids are only ever
	// matched against the current generation's pending map, but salting
	// the base makes the guarantee unconditional: a frame carrying an id
	// from an earlier connection generation (a delayed duplicate, a
	// middlebox replay, a server bug straddling the reconnect) cannot
	// collide with a live id until ~2^32 requests elapse within one
	// generation — at which point the stream fails loudly on the unknown
	// id rather than mis-delivering a response.
	p.idSeq = uint32(p.gen * 0x9E3779B1)
	p.pending = make(map[uint32]*pcall)
	go p.readLoop(p.gen, conn, bufio.NewReaderSize(conn, 64<<10))
	return nil
}

// failLocked tears down generation gen: the connection is closed and
// every in-flight call fails with err. A no-op if a newer generation
// already took over (that teardown already failed these calls).
func (p *pipe) failLocked(gen uint64, err error) {
	if p.gen != gen {
		return
	}
	p.gen++
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
	for id, call := range p.pending {
		delete(p.pending, id)
		call.err = err
		call.done <- struct{}{}
	}
}

// fail is failLocked for callers not holding the mutex.
func (p *pipe) fail(gen uint64, err error) {
	p.mu.Lock()
	p.failLocked(gen, err)
	p.mu.Unlock()
}

// readLoop receives response frames for one connection generation and
// hands them to their waiting callers.
func (p *pipe) readLoop(gen uint64, conn net.Conn, r *bufio.Reader) {
	var hdr [proto.HeaderLen]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			p.fail(gen, err)
			return
		}
		h, err := proto.ParseResponseHeader(hdr[:])
		if err != nil {
			p.fail(gen, err)
			return
		}
		var value []byte
		if h.ValueLen > 0 {
			value = make([]byte, h.ValueLen)
			if _, err := io.ReadFull(r, value); err != nil {
				p.fail(gen, err)
				return
			}
		}
		p.mu.Lock()
		if p.gen != gen {
			p.mu.Unlock()
			return // torn down under us; the teardown failed all calls
		}
		call := p.pending[h.ID]
		delete(p.pending, h.ID)
		p.mu.Unlock()
		if call == nil {
			// The server answered an id we never sent (or answered twice):
			// the stream cannot be trusted.
			p.fail(gen, errors.New("client: response for unknown request id"))
			return
		}
		call.status = h.Status
		if h.Status == proto.StatusErr {
			call.err = &ServerError{Reason: string(value)}
		} else {
			call.value = value
		}
		call.done <- struct{}{}
	}
}

// attempt sends one request on the current connection (redialing a dead
// one) and waits for its response.
func (p *pipe) attempt(op proto.Op, key string, value []byte, ttl uint32) (proto.Status, []byte, error) {
	call := pcallPool.Get().(*pcall)
	call.status, call.value, call.err = 0, nil, nil
	// Encode outside the lock with a placeholder id; the real id is
	// assigned under the mutex — after any redial, so it always belongs
	// to the generation the frame is written on — and patched into the
	// frame's id field in place.
	buf := proto.GetBuf()
	*buf = proto.AppendRequest(*buf, op, ttl, 0, key, value)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		proto.PutBuf(buf)
		pcallPool.Put(call)
		return 0, nil, net.ErrClosed
	}
	if p.conn == nil {
		if err := p.redialLocked(); err != nil {
			p.mu.Unlock()
			proto.PutBuf(buf)
			pcallPool.Put(call)
			return 0, nil, err
		}
	}
	gen := p.gen
	p.idSeq++
	id := p.idSeq
	binary.BigEndian.PutUint32((*buf)[12:16], id)
	p.pending[id] = call
	_, werr := p.w.Write(*buf)
	if werr != nil {
		p.failLocked(gen, werr) // fails this call too, via pending
		p.mu.Unlock()
		proto.PutBuf(buf)
		<-call.done // consume the failure signal before pooling
		pcallPool.Put(call)
		return 0, nil, werr
	}
	p.mu.Unlock()
	proto.PutBuf(buf)
	// Nudge the flusher (it coalesces: one pending nudge is enough for
	// any number of appended frames).
	select {
	case p.flushReq <- struct{}{}:
	default:
	}

	if t := p.c.opts.OpTimeout; t > 0 {
		timer := time.NewTimer(t)
		select {
		case <-call.done:
			timer.Stop()
		case <-timer.C:
			// No way to cancel one request on a shared pipe without losing
			// frame accounting; a stuck server takes the connection down,
			// like the sync client's deadline does.
			p.fail(gen, fmt.Errorf("client: pipelined operation timed out after %v", t))
			<-call.done
		}
	} else {
		<-call.done
	}
	st, v, err := call.status, call.value, call.err
	pcallPool.Put(call)
	return st, v, err
}

// roundTrip is the pipelined operation loop: window admission, then
// attempt-with-retry following the same policy as Client.do.
func (p *pipe) roundTrip(op proto.Op, key string, value []byte, ttl uint32) (proto.Status, []byte, error) {
	p.window <- struct{}{}
	defer func() { <-p.window }()
	for attempt := 0; ; attempt++ {
		st, v, err := p.attempt(op, key, value, ttl)
		if err == nil {
			return st, v, nil
		}
		var se *ServerError
		if errors.As(err, &se) {
			return 0, nil, err // delivered and rejected: retrying cannot help
		}
		if errors.Is(err, net.ErrClosed) {
			return 0, nil, err
		}
		if attempt >= p.c.opts.Retries {
			return 0, nil, err
		}
		time.Sleep(p.c.backoff(attempt))
	}
}

// Get is the pipelined GET.
func (p *pipe) Get(key string) ([]byte, bool, error) {
	if err := checkKey(key); err != nil {
		return nil, false, err
	}
	st, v, err := p.roundTrip(proto.OpGet, key, nil, 0)
	if err != nil {
		return nil, false, err
	}
	if st != proto.StatusOK {
		return nil, false, nil
	}
	return v, true, nil
}

// Set is the pipelined SET.
func (p *pipe) Set(key string, value []byte, ttl time.Duration) (bool, error) {
	if err := checkKey(key); err != nil {
		return false, err
	}
	if len(value) > proto.MaxValueLen {
		return false, &ServerError{Reason: "value too large"}
	}
	st, _, err := p.roundTrip(proto.OpSet, key, value, ttlSeconds(ttl))
	if err != nil {
		return false, err
	}
	return st == proto.StatusOK, nil
}

// Delete is the pipelined DELETE.
func (p *pipe) Delete(key string) (bool, error) {
	if err := checkKey(key); err != nil {
		return false, err
	}
	st, _, err := p.roundTrip(proto.OpDelete, key, nil, 0)
	if err != nil {
		return false, err
	}
	return st == proto.StatusOK, nil
}

// close terminates the pipelined client: the connection drops and every
// in-flight operation fails with net.ErrClosed.
func (p *pipe) close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	var err error
	if p.conn != nil {
		err = p.conn.Close()
	}
	p.failLocked(p.gen, net.ErrClosed)
	// Wake the flusher so it observes closed and exits; a nudge already
	// in flight serves the same purpose.
	select {
	case p.flushReq <- struct{}{}:
	default:
	}
	return err
}
