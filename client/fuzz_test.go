package client

import (
	"strings"
	"testing"
)

// FuzzKeysPayload hardens the keys-export payload parser — the frame
// body a cluster router trusts a (possibly skewed) server to produce —
// against malformed lines: it must either parse or error, never panic,
// and whatever parses must round out to well-formed samples.
func FuzzKeysPayload(f *testing.F) {
	f.Add([]byte("KEY 3 alpha\r\nKEY 0 beta\r\n"))
	f.Add([]byte("KEY 15 key with spaces\r\n"))
	f.Add([]byte(""))
	f.Add([]byte("KEY -1 negative\r\n"))
	f.Add([]byte("KEY notanumber k\r\n"))
	f.Add([]byte("STAT hits 4\r\n"))
	f.Add([]byte("KEY 1\r\n"))
	f.Add([]byte("KEY 9 \r\n"))
	f.Add([]byte("\r\n\r\nKEY 2 x\r\n"))
	f.Fuzz(func(t *testing.T, payload []byte) {
		samples, err := parseKeysPayload(payload)
		if err != nil {
			return
		}
		for _, s := range samples {
			if strings.ContainsAny(s.Key, "\r\n") {
				t.Fatalf("parsed key %q contains line breaks", s.Key)
			}
		}
	})
}
