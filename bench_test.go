// Benchmarks that regenerate each table and figure of the paper's
// evaluation at a reduced scale. Each benchmark reports the headline
// metric of its figure via b.ReportMetric so `go test -bench=.` doubles
// as a quick reproduction run; the cmd/ tools print the full series at
// larger scales (see EXPERIMENTS.md for a key).
package s3fifo

import (
	"testing"

	"s3fifo/internal/analysis"
	"s3fifo/internal/harness"
	"s3fifo/internal/sim"
	"s3fifo/internal/workload"
)

// benchScale keeps the benchmark corpus small enough for routine runs.
const benchScale = 0.02

// BenchmarkTable1OneHitWonders regenerates Table 1's one-hit-wonder
// columns across the 14 dataset profiles (also the data behind Fig. 3).
func BenchmarkTable1OneHitWonders(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var full, at10 float64
		for _, p := range workload.Profiles {
			tr := p.Generate(0, benchScale)
			st := analysis.Stats(tr, 3, 7)
			full += st.OneHitFull
			at10 += st.OneHit10
		}
		n := float64(len(workload.Profiles))
		b.ReportMetric(full/n, "mean-ohw-full")
		b.ReportMetric(at10/n, "mean-ohw-10pct")
	}
}

// BenchmarkFigure2OneHitWonderCurve regenerates the Zipf one-hit-wonder
// curve of Fig. 2 (α=1.0) and reports the ratio at 10% sequence length.
func BenchmarkFigure2OneHitWonderCurve(b *testing.B) {
	tr := workload.Generate(workload.Config{Objects: 50_000, Requests: 400_000, Alpha: 1.0}, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts := analysis.Curve(tr, []float64{0.01, 0.1, 1.0}, 5, 3)
		b.ReportMetric(pts[1].Ratio, "ohw@10pct")
	}
}

// BenchmarkFigure4FrequencyAtEviction regenerates Fig. 4 and reports the
// share of LRU-evicted objects that were never reused (MSR-like trace).
func BenchmarkFigure4FrequencyAtEviction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig4(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Trace == "msr" && r.Algorithm == "lru" {
				b.ReportMetric(r.FreqShare[0], "msr-lru-freq0")
			}
		}
	}
}

// BenchmarkFigure6MissRatioReduction regenerates Fig. 6 on the reduced
// corpus and reports S3-FIFO's mean and P90 miss-ratio reduction vs FIFO
// at the large cache size.
func BenchmarkFigure6MissRatioReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := harness.RunEfficiency(harness.EfficiencyConfig{
			Scale:     benchScale,
			SizeFracs: []float64{0.10},
			Algorithms: []string{
				"fifo", "lru", "clock", "arc", "lirs", "tinylfu", "2q", "s3fifo",
			},
		})
		for _, s := range harness.Fig6Summaries(results, 0.10) {
			if s.Algorithm == "s3fifo" {
				b.ReportMetric(s.Summary.Mean, "s3fifo-mean-reduction")
				b.ReportMetric(s.Summary.P90, "s3fifo-p90-reduction")
			}
		}
	}
}

// BenchmarkFigure7DatasetWinners regenerates Fig. 7's per-dataset means
// and reports how many of the 14 datasets S3-FIFO wins.
func BenchmarkFigure7DatasetWinners(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := harness.RunEfficiency(harness.EfficiencyConfig{
			Scale:      benchScale,
			SizeFracs:  []float64{0.10},
			Algorithms: []string{"fifo", "lru", "arc", "tinylfu", "s3fifo"},
		})
		per := harness.Fig7PerDataset(results, 0.10)
		_, counts := harness.BestPerDataset(per)
		b.ReportMetric(float64(counts["s3fifo"]), "s3fifo-dataset-wins")
		b.ReportMetric(float64(len(per)), "datasets")
	}
}

// BenchmarkFigure8Throughput regenerates Fig. 8 at a reduced op count and
// reports S3-FIFO's speedup over optimized LRU at the highest measured
// thread count (1 on a single-core runner; the scaling claim needs cores).
func BenchmarkFigure8Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig8(harness.Fig8Config{
			Objects: 50_000, OpsPerThread: 300_000,
			Caches: []string{"lru-optimized", "s3fifo"},
		})
		if err != nil {
			b.Fatal(err)
		}
		best := map[string]float64{}
		maxThreads := 0
		for _, r := range rows {
			if r.Threads > maxThreads {
				maxThreads = r.Threads
			}
		}
		for _, r := range rows {
			if r.Threads == maxThreads {
				best[r.Cache] = r.Throughput()
			}
		}
		if best["lru-optimized"] > 0 {
			b.ReportMetric(best["s3fifo"]/best["lru-optimized"], "s3fifo-vs-lru-speedup")
		}
		b.ReportMetric(float64(maxThreads), "threads")
	}
}

// BenchmarkFigure9FlashAdmission regenerates Fig. 9 and reports the
// S3-FIFO filter's write reduction vs no admission on the Wikimedia-like
// trace (1% DRAM).
func BenchmarkFigure9FlashAdmission(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig9(0.05)
		if err != nil {
			b.Fatal(err)
		}
		var fifoWrites, s3Writes, s3Miss float64
		for _, r := range rows {
			switch {
			case r.Policy == "wiki_cdn/fifo":
				fifoWrites = r.NormalizedWrites()
			case r.Policy == "wiki_cdn/s3fifo" && r.DRAMFrac == 0.01:
				s3Writes = r.NormalizedWrites()
				s3Miss = r.MissRatio()
			}
		}
		if fifoWrites > 0 {
			b.ReportMetric(s3Writes/fifoWrites, "s3fifo-write-share")
		}
		b.ReportMetric(s3Miss, "s3fifo-missratio")
	}
}

// BenchmarkFigure10Table2Demotion regenerates Fig. 10 / Table 2 and
// reports S3-FIFO's demotion speed and precision at the default 10% S on
// the Twitter-like trace, large cache.
func BenchmarkFigure10Table2Demotion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := harness.Fig10(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Trace == "twitter" && r.Algorithm == "s3fifo" && r.Ratio == 0.10 && r.SizeFrac == 0.10 {
				b.ReportMetric(r.Speed, "demotion-speed")
				b.ReportMetric(r.Precision, "demotion-precision")
			}
		}
	}
}

// BenchmarkFigure11SmallQueueSweep regenerates Fig. 11 and reports the
// spread between the best and worst small-queue size by mean reduction.
func BenchmarkFigure11SmallQueueSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := harness.Fig11(0.01, 0)
		if err != nil {
			b.Fatal(err)
		}
		sums := out[0.10]
		if len(sums) == 0 {
			b.Fatal("no summaries")
		}
		b.ReportMetric(sums[0].Summary.Mean, "best-ratio-mean")
		b.ReportMetric(sums[len(sums)-1].Summary.Mean, "worst-ratio-mean")
	}
}

// BenchmarkAdaptiveS3FIFOD regenerates the §6.2.2 comparison.
func BenchmarkAdaptiveS3FIFOD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := harness.AdaptiveComparison(0.01, 0)
		for _, s := range out[0.10] {
			b.ReportMetric(s.Summary.Mean, s.Algorithm+"-mean")
		}
	}
}

// BenchmarkAblationQueueType regenerates the §6.3 queue-type ablation.
func BenchmarkAblationQueueType(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := harness.AblationComparison(0.01, 0)
		var static, lruBoth float64
		for _, s := range out[0.10] {
			switch s.Algorithm {
			case "s3fifo":
				static = s.Summary.Mean
			case "s3fifo-lru-both":
				lruBoth = s.Summary.Mean
			}
		}
		b.ReportMetric(static, "fifo-queues-mean")
		b.ReportMetric(lruBoth, "lru-queues-mean")
	}
}

// BenchmarkDesignAblation sweeps S3-FIFO's move threshold and ghost size
// (the design choices DESIGN.md calls out beyond the paper's ablations).
func BenchmarkDesignAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := harness.DesignAblation(0.01, 0)
		for _, s := range out[0.10] {
			switch s.Algorithm {
			case "s3fifo-t1", "s3fifo-g0.1", "s3fifo-g2":
				b.ReportMetric(s.Summary.Mean, s.Algorithm+"-mean")
			}
		}
	}
}

// BenchmarkByteMissRatio regenerates the §5.2.3 byte-miss-ratio variant
// on a subset of algorithms.
func BenchmarkByteMissRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := harness.RunEfficiency(harness.EfficiencyConfig{
			Scale: 0.01, SizeFracs: []float64{0.10}, ByteMode: true,
			Algorithms: []string{"fifo", "lru", "s3fifo"},
		})
		for _, s := range harness.Fig6Summaries(results, 0.10) {
			if s.Algorithm == "s3fifo" {
				b.ReportMetric(s.Summary.Mean, "s3fifo-byte-reduction")
			}
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed (requests per
// second through S3-FIFO), the equivalent of libCacheSim's headline
// number.
func BenchmarkSimulatorThroughput(b *testing.B) {
	tr := sim.Unitize(workload.Generate(workload.Config{
		Objects: 100_000, Requests: 1_000_000, Alpha: 1.0,
	}, 1))
	b.SetBytes(int64(len(tr)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := sim.NewPolicy("s3fifo", 10_000, tr)
		if err != nil {
			b.Fatal(err)
		}
		res := sim.Run(p, tr)
		b.ReportMetric(res.MissRatio(), "missratio")
	}
}
